open Ra_core

let test_request_body_unambiguous () =
  (* distinct (challenge, freshness) pairs must serialize distinctly —
     otherwise a MAC over the body could be transplanted *)
  let b1 = Message.request_body ~challenge:"ab" ~freshness:Message.F_none in
  let b2 = Message.request_body ~challenge:"a" ~freshness:Message.F_none in
  let b3 = Message.request_body ~challenge:"ab" ~freshness:(Message.F_counter 1L) in
  Alcotest.(check bool) "challenge length framed" true (b1 <> b2);
  Alcotest.(check bool) "freshness framed" true (b1 <> b3)

let test_freshness_encoding () =
  Alcotest.(check bool) "counter vs timestamp tagged" true
    (Message.freshness_bytes (Message.F_counter 5L)
    <> Message.freshness_bytes (Message.F_timestamp 5L));
  Alcotest.(check bool) "nonce value encoded" true
    (Message.freshness_bytes (Message.F_nonce "a")
    <> Message.freshness_bytes (Message.F_nonce "b"))

let test_wire_size () =
  let req =
    Message.Request { challenge = "0123456789abcdef"; freshness = Message.F_counter 1L; tag = Message.Tag_none }
  in
  Alcotest.(check bool) "positive" true (Message.wire_size req > 0);
  let req_hmac =
    Message.Request
      {
        challenge = "0123456789abcdef";
        freshness = Message.F_counter 1L;
        tag = Message.Tag_hmac_sha1 (String.make 20 't');
      }
  in
  Alcotest.(check bool) "tag adds size" true
    (Message.wire_size req_hmac > Message.wire_size req)

(* ---- wire serialization ---- *)

let freshness_gen =
  QCheck.Gen.(
    oneof
      [
        return Message.F_none;
        map (fun s -> Message.F_nonce s) (string_size (int_range 0 32));
        map (fun i -> Message.F_counter (Int64.of_int (abs i))) int;
        map (fun i -> Message.F_timestamp (Int64.of_int (abs i))) int;
      ])

let tag_gen =
  QCheck.Gen.(
    oneof
      [
        return Message.Tag_none;
        map (fun s -> Message.Tag_hmac_sha1 s) (string_size (return 20));
        map (fun s -> Message.Tag_aes_cbc_mac s) (string_size (return 16));
        map (fun s -> Message.Tag_speck_cbc_mac s) (string_size (return 8));
        map (fun s -> Message.Tag_ecdsa s) (string_size (return 42));
      ])

let wire_gen =
  QCheck.Gen.(
    oneof
      [
        map3
          (fun challenge freshness tag -> Message.Request { challenge; freshness; tag })
          (string_size (int_range 0 32))
          freshness_gen tag_gen;
        map3
          (fun echo_challenge echo_freshness report ->
            Message.Response { echo_challenge; echo_freshness; report })
          (string_size (int_range 0 32))
          freshness_gen
          (string_size (return 20));
        map3
          (fun t c tag ->
            Message.Sync_request
              { verifier_time_ms = Int64.of_int (abs t); sync_counter = Int64.of_int (abs c); sync_tag = tag })
          int int
          (string_size (return 20));
        map2
          (fun c tag ->
            Message.Sync_response { acked_counter = Int64.of_int (abs c); ack_tag = tag })
          int
          (string_size (return 20));
        map3
          (fun name payload (freshness, tag) ->
            Message.Service_request
              { command_name = name; payload; service_freshness = freshness;
                service_tag = tag })
          (string_size (int_range 0 16))
          (string_size (int_range 0 64))
          (pair freshness_gen tag_gen);
        map2
          (fun name report -> Message.Service_ack { acked_command = name; ack_report = report })
          (string_size (int_range 0 16))
          (string_size (return 20));
        map3
          (fun hs_nonce challenge (freshness, tag) ->
            Message.Hs_init { hs_nonce; hs_req = { challenge; freshness; tag } })
          (string_size (int_range 0 32))
          (string_size (int_range 0 32))
          (pair freshness_gen tag_gen);
        map3
          (fun hs_rnonce (echo_challenge, echo_freshness) (report, hs_bind) ->
            Message.Hs_resp
              { hs_rnonce;
                hs_report = { echo_challenge; echo_freshness; report };
                hs_bind })
          (string_size (int_range 0 32))
          (pair (string_size (int_range 0 32)) freshness_gen)
          (pair (string_size (return 20)) (string_size (return 32)));
        map (fun fin_tag -> Message.Hs_fin { fin_tag }) (string_size (return 32));
        map3
          (fun seq ct tag -> Message.Record { rec_seq = Int64.of_int (abs seq); rec_ct = ct; rec_tag = tag })
          int
          (string_size (int_range 0 64))
          (string_size (return 16));
      ])

let wire_arb = QCheck.make ~print:(Format.asprintf "%a" Message.pp_wire) wire_gen

let qcheck_wire_roundtrip =
  QCheck.Test.make ~name:"message: wire_of_bytes . wire_to_bytes = id" ~count:300
    wire_arb (fun w -> Message.wire_of_bytes (Message.wire_to_bytes w) = Some w)

let qcheck_wire_size_consistent =
  QCheck.Test.make ~name:"message: wire_size = |wire_to_bytes|" ~count:300 wire_arb
    (fun w -> Message.wire_size w = String.length (Message.wire_to_bytes w))

let qcheck_truncation_rejected =
  QCheck.Test.make ~name:"message: truncated frames rejected" ~count:300
    QCheck.(pair wire_arb (int_range 0 1000))
    (fun (w, cut) ->
      let bytes = Message.wire_to_bytes w in
      let cut = cut mod String.length bytes in
      Message.wire_of_bytes (String.sub bytes 0 cut) = None)

let qcheck_garbage_never_raises =
  QCheck.Test.make ~name:"message: parser is total on garbage" ~count:500
    QCheck.(string_of_size Gen.(0 -- 200))
    (fun s ->
      match Message.wire_of_bytes s with Some _ -> true | None -> true)

let test_trailing_garbage_rejected () =
  let bytes =
    Message.wire_to_bytes
      (Message.Request { challenge = "c"; freshness = Message.F_none; tag = Message.Tag_none })
  in
  Alcotest.(check bool) "clean frame parses" true (Message.wire_of_bytes bytes <> None);
  Alcotest.(check bool) "trailing byte rejected" true
    (Message.wire_of_bytes (bytes ^ "x") = None)

let qcheck_body_injective_challenge =
  QCheck.Test.make ~name:"message: body injective in challenge" ~count:200
    QCheck.(pair (string_of_size Gen.(0 -- 30)) (string_of_size Gen.(0 -- 30)))
    (fun (c1, c2) ->
      QCheck.assume (c1 <> c2);
      Message.request_body ~challenge:c1 ~freshness:Message.F_none
      <> Message.request_body ~challenge:c2 ~freshness:Message.F_none)

let qcheck_body_injective_counter =
  QCheck.Test.make ~name:"message: body injective in counter" ~count:200
    QCheck.(pair (map Int64.of_int small_int) (map Int64.of_int small_int))
    (fun (a, b) ->
      QCheck.assume (a <> b);
      Message.request_body ~challenge:"c" ~freshness:(Message.F_counter a)
      <> Message.request_body ~challenge:"c" ~freshness:(Message.F_counter b))

let tests =
  [
    Alcotest.test_case "request body framing" `Quick test_request_body_unambiguous;
    Alcotest.test_case "freshness encoding" `Quick test_freshness_encoding;
    Alcotest.test_case "wire size" `Quick test_wire_size;
    Alcotest.test_case "trailing garbage rejected" `Quick test_trailing_garbage_rejected;
    QCheck_alcotest.to_alcotest qcheck_wire_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_wire_size_consistent;
    QCheck_alcotest.to_alcotest qcheck_truncation_rejected;
    QCheck_alcotest.to_alcotest qcheck_garbage_never_raises;
    QCheck_alcotest.to_alcotest qcheck_body_injective_challenge;
    QCheck_alcotest.to_alcotest qcheck_body_injective_counter;
  ]
