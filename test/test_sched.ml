open Ra_core
module Simtime = Ra_net.Simtime
module Trace = Ra_net.Trace
module Channel = Ra_net.Channel
module Impairment = Ra_net.Impairment

(* ---- event queue ------------------------------------------------------ *)

let test_heap_order_and_ties () =
  let sched = Sched.create () in
  let log = ref [] in
  let ev tag () = log := tag :: !log in
  Sched.at sched ~at:5.0 (ev "a5");
  Sched.at sched ~at:1.0 (ev "b1");
  Sched.at sched ~at:5.0 (ev "c5");
  Sched.at sched ~at:3.0 (ev "d3");
  Alcotest.(check int) "four pending" 4 (Sched.pending sched);
  Alcotest.(check bool) "earliest is 1.0" true (Sched.next_at sched = Some 1.0);
  let fired = Sched.run sched in
  Alcotest.(check int) "all fired" 4 fired;
  Alcotest.(check (list string)) "time order, insertion order on ties"
    [ "b1"; "d3"; "a5"; "c5" ]
    (List.rev !log);
  Alcotest.(check (float 0.0)) "clock at last event" 5.0 (Sched.now sched);
  Alcotest.(check int) "fired counter" 4 (Sched.fired sched);
  Alcotest.(check int) "queue drained" 0 (Sched.pending sched)

let test_past_events_clamp_to_now () =
  let sched = Sched.create () in
  let seen = ref [] in
  Sched.at sched ~at:2.0 (fun () ->
      (* "due" one second ago: must fire at now, never rewind the clock *)
      Sched.at sched ~at:1.0 (fun () -> seen := Sched.now sched :: !seen));
  let fired = Sched.run sched in
  Alcotest.(check int) "both fired" 2 fired;
  Alcotest.(check (list (float 0.0))) "clamped to now" [ 2.0 ] !seen

let test_run_until_horizon () =
  let sched = Sched.create () in
  let log = ref [] in
  List.iter (fun at -> Sched.at sched ~at (fun () -> log := at :: !log)) [ 1.0; 2.0; 10.0 ];
  let fired = Sched.run ~until:5.0 sched in
  Alcotest.(check int) "two within horizon" 2 fired;
  Alcotest.(check int) "one beyond it still pending" 1 (Sched.pending sched);
  Alcotest.(check (float 0.0)) "clock at last fired event" 2.0 (Sched.now sched);
  let rest = Sched.run sched in
  Alcotest.(check int) "rest fired" 1 rest;
  Alcotest.(check (float 0.0)) "clock caught up" 10.0 (Sched.now sched)

let test_after_negative_rejected () =
  let sched = Sched.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sched.after: delay must be >= 0") (fun () ->
      Sched.after sched ~delay:(-1.0) (fun () -> ()))

let test_determinism_across_runs () =
  let run () =
    let sched = Sched.create () in
    let log = ref [] in
    let rec chain i at =
      if i < 20 then
        Sched.at sched ~at (fun () ->
            log := (i, Sched.now sched) :: !log;
            chain (i + 1) (at +. (0.1 *. float_of_int (i mod 3))))
    in
    chain 0 0.5;
    Sched.at sched ~at:0.5 (fun () -> log := (100, Sched.now sched) :: !log);
    ignore (Sched.run sched);
    List.rev !log
  in
  Alcotest.(check bool) "two runs identical" true (run () = run ())

(* ---- delayed delivery through the queue ------------------------------- *)

let test_channel_defer_hook () =
  let time = Simtime.create () in
  let trace = Trace.create time in
  let ch = Channel.create time trace in
  let got = ref [] in
  let (_ : string Channel.Endpoint.handle) =
    Channel.Endpoint.attach ch Channel.Prover_side (fun m -> got := m :: !got)
  in
  Channel.set_impairment ch
    (Some
       (Impairment.create
          ~to_prover:{ Impairment.pristine with delay = 1.0; delay_s = 0.25 }
          ~seed:11L ()));
  let sched = Sched.create () in
  Channel.set_defer ch
    (Some
       (fun delay deliver ->
         Sched.after sched ~delay (fun () ->
             Simtime.advance_to time (Sched.now sched);
             deliver ())));
  Channel.send ch ~src:Channel.Verifier_side "hello";
  Alcotest.(check bool) "forward consumed the message" true
    (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check int) "delivery deferred, not dropped" 0 (List.length !got);
  Alcotest.(check int) "one event queued" 1 (Sched.pending sched);
  let fired = Sched.run sched in
  Alcotest.(check int) "delivery event fired" 1 fired;
  Alcotest.(check (list string)) "delivered through the queue" [ "hello" ] !got;
  Alcotest.(check (float 0.0)) "clock advanced to the delivery time"
    (Sched.now sched) (Simtime.now time);
  (* with the hook removed, the delay advances the clock inline again *)
  Channel.set_defer ch None;
  let before = Simtime.now time in
  Channel.send ch ~src:Channel.Verifier_side "inline";
  let (_ : bool) = Channel.forward_next ch ~dst:Channel.Prover_side in
  Alcotest.(check (list string)) "inline delivery immediate" [ "inline"; "hello" ] !got;
  Alcotest.(check bool) "inline delay advanced the clock" true
    (Simtime.now time >= before)

(* ---- engine equivalence ----------------------------------------------- *)

let names = [ "a"; "b"; "c" ]
let member_clock m = Simtime.now (Session.time (Fleet.member_session m))

let fleet_state f =
  ( Fleet.summary f,
    List.map Fleet.member_history (Fleet.members f),
    List.map member_clock (Fleet.members f),
    List.map
      (fun m -> Channel.transcript (Session.channel (Fleet.member_session m)))
      (Fleet.members f) )

let test_sweep_events_matches_seq () =
  let a = Fleet.create ~ram_size:1024 ~names () in
  let b = Fleet.create ~ram_size:1024 ~names () in
  let ra = Fleet.sweep a in
  let rb = Fleet.sweep ~engine:`Events b in
  Alcotest.(check bool) "verdicts identical" true (ra = rb);
  Alcotest.(check bool) "ledgers, clocks and transcripts identical" true
    (fleet_state a = fleet_state b)

let test_chaos_events_matches_seq () =
  let run engine =
    let f = Fleet.create ~ram_size:1024 ~names () in
    let grid =
      Fleet.chaos_sweep ~seed:99L ~engine ~rounds_per_member:3 ~losses:[ 0.0; 0.2 ]
        ~policies:[ ("default", Retry.default) ]
        f
    in
    (grid, fleet_state f)
  in
  Alcotest.(check bool) "grid, ledgers, clocks and transcripts identical" true
    (run `Seq = run `Events)

(* sharded engine vs the sequential oracle: verdicts, ledgers, clocks,
   transcripts AND flight recorders, at every interesting shard count
   (1 = degenerate, 2/3 = uneven splits of 3 members, 4/7 = more shards
   than members, so some shards own empty ranges) *)
let shard_counts = [ 1; 2; 3; 4; 7 ]

let traced_state f = (fleet_state f, Fleet.recent_rounds f)

let test_sweep_shards_matches_seq () =
  let run engine =
    let f = Fleet.create ~ram_size:1024 ~names () in
    Fleet.enable_tracing f;
    let r = Fleet.sweep ~engine f in
    (r, traced_state f)
  in
  let oracle = run `Seq in
  List.iter
    (fun shards ->
      Alcotest.(check bool)
        (Printf.sprintf "sweep state identical at %d shards" shards)
        true
        (run (`Shards shards) = oracle))
    shard_counts

let test_chaos_shards_matches_seq () =
  let run engine =
    let f = Fleet.create ~ram_size:1024 ~names () in
    Fleet.enable_tracing f;
    let grid =
      Fleet.chaos_sweep ~seed:99L ~engine ~rounds_per_member:3 ~losses:[ 0.0; 0.2 ]
        ~policies:[ ("default", Retry.default) ]
        f
    in
    (grid, traced_state f)
  in
  let oracle = run `Seq in
  List.iter
    (fun shards ->
      Alcotest.(check bool)
        (Printf.sprintf "chaos state identical at %d shards" shards)
        true
        (run (`Shards shards) = oracle))
    shard_counts

let prop_sharded_engine_equivalent =
  let gen =
    QCheck.Gen.(
      triple (float_bound_exclusive 0.5) (map Int64.of_int int)
        (oneofl [ 1; 2; 3; 4; 7 ]))
  in
  QCheck.Test.make ~count:10
    ~name:
      "sharded engine = sequential oracle (verdicts, ledgers, transcripts, \
       clocks, recorders) over random (loss, seed, shards)"
    (QCheck.make gen ~print:(fun (loss, seed, shards) ->
         Printf.sprintf "loss=%.3f seed=%Ld shards=%d" loss seed shards))
    (fun (loss, seed, shards) ->
      let run engine =
        let f = Fleet.create ~ram_size:1024 ~names:[ "p"; "q"; "r" ] () in
        Fleet.enable_tracing f;
        let grid =
          Fleet.chaos_sweep ~seed ~engine ~rounds_per_member:2 ~losses:[ loss ]
            ~policies:[ ("impatient", Retry.impatient) ]
            f
        in
        (grid, traced_state f)
      in
      run `Seq = run (`Shards shards))

let prop_engines_verdict_equivalent =
  let gen = QCheck.Gen.(pair (float_bound_exclusive 0.5) (map Int64.of_int int)) in
  QCheck.Test.make ~count:10
    ~name:"event engine = sequential oracle over random impairment seeds"
    (QCheck.make gen ~print:(fun (loss, seed) ->
         Printf.sprintf "loss=%.3f seed=%Ld" loss seed))
    (fun (loss, seed) ->
      let run engine =
        let f = Fleet.create ~ram_size:1024 ~names:[ "p"; "q" ] () in
        let grid =
          Fleet.chaos_sweep ~seed ~engine ~rounds_per_member:2 ~losses:[ loss ]
            ~policies:[ ("impatient", Retry.impatient) ]
            f
        in
        (grid, fleet_state f)
      in
      run `Seq = run `Events)

(* ---- retry bound used for scheduler horizons -------------------------- *)

let test_max_total_s_bounds_round () =
  let p = Retry.impatient in
  let bound = Retry.max_total_s p in
  Alcotest.(check bool) "bound positive" true (bound > 0.0);
  (* a dead wire uses every window in full: the round's simulated waiting
     must stay within the bound *)
  let session = Session.create ~ram_size:1024 () in
  Session.set_impairment session
    (Some
       (Impairment.create
          ~to_prover:(Impairment.lossy 1.0)
          ~to_verifier:(Impairment.lossy 1.0)
          ~seed:3L ()));
  let round = Session.attest_round_r ~policy:p session in
  (match round.Session.r_verdict with
  | Verdict.Timed_out { waited_s; _ } ->
    Alcotest.(check bool) "waited within max_total_s" true (waited_s <= bound)
  | v -> Alcotest.failf "expected Timed_out, got %s" (Verdict.label v));
  Alcotest.(check bool) "bound is tight-ish (not 10x the wait)" true
    (round.Session.r_elapsed_s > 0.5 *. bound)

let tests =
  [
    Alcotest.test_case "heap order and ties" `Quick test_heap_order_and_ties;
    Alcotest.test_case "past events clamp to now" `Quick test_past_events_clamp_to_now;
    Alcotest.test_case "run until horizon" `Quick test_run_until_horizon;
    Alcotest.test_case "negative delay rejected" `Quick test_after_negative_rejected;
    Alcotest.test_case "determinism across runs" `Quick test_determinism_across_runs;
    Alcotest.test_case "channel defer hook" `Quick test_channel_defer_hook;
    Alcotest.test_case "sweep: events = seq" `Quick test_sweep_events_matches_seq;
    Alcotest.test_case "chaos: events = seq" `Slow test_chaos_events_matches_seq;
    Alcotest.test_case "sweep: shards = seq" `Quick test_sweep_shards_matches_seq;
    Alcotest.test_case "chaos: shards = seq" `Slow test_chaos_shards_matches_seq;
    QCheck_alcotest.to_alcotest prop_sharded_engine_equivalent;
    QCheck_alcotest.to_alcotest prop_engines_verdict_equivalent;
    Alcotest.test_case "max_total_s bounds a round" `Quick test_max_total_s_bounds_round;
  ]
