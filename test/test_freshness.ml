open Ra_core
module Device = Ra_mcu.Device

let key = String.make 60 'k'

let device ?clock_impl () =
  Device.create ~ram_size:1024 ?clock_impl ~key ()

let clocked () =
  device ~clock_impl:(Device.Clock_hw { width = 64; divider_log2 = 0 }) ()

let test_no_freshness_accepts_anything () =
  let st = Freshness.init (device ()) Freshness.No_freshness in
  Alcotest.(check bool) "none" true (Freshness.check_and_update st Message.F_none = Ok ());
  Alcotest.(check bool) "counter too" true
    (Freshness.check_and_update st (Message.F_counter 1L) = Ok ())

let test_counter_monotonic () =
  let st = Freshness.init (device ()) Freshness.Counter in
  Alcotest.(check bool) "first" true
    (Freshness.check_and_update st (Message.F_counter 5L) = Ok ());
  Alcotest.(check bool) "replay rejected" true
    (match Freshness.check_and_update st (Message.F_counter 5L) with
    | Error (Freshness.Stale_counter { got = 5L; stored = 5L }) -> true
    | Ok () | Error _ -> false);
  Alcotest.(check bool) "reorder rejected" true
    (Freshness.check_and_update st (Message.F_counter 4L) <> Ok ());
  Alcotest.(check bool) "progress" true
    (Freshness.check_and_update st (Message.F_counter 6L) = Ok ())

let test_counter_gaps_allowed () =
  let st = Freshness.init (device ()) Freshness.Counter in
  Alcotest.(check bool) "jump to 100" true
    (Freshness.check_and_update st (Message.F_counter 100L) = Ok ());
  Alcotest.(check bool) "101" true
    (Freshness.check_and_update st (Message.F_counter 101L) = Ok ())

let test_missing_and_wrong_fields () =
  let st = Freshness.init (device ()) Freshness.Counter in
  Alcotest.(check bool) "missing" true
    (Freshness.check_and_update st Message.F_none = Error Freshness.Missing_field);
  Alcotest.(check bool) "wrong kind" true
    (Freshness.check_and_update st (Message.F_timestamp 1L) = Error Freshness.Wrong_field)

let test_nonce_history () =
  let st = Freshness.init (device ()) (Freshness.Nonce_history { max_entries = None }) in
  Alcotest.(check bool) "n1" true
    (Freshness.check_and_update st (Message.F_nonce "n1") = Ok ());
  Alcotest.(check bool) "n2" true
    (Freshness.check_and_update st (Message.F_nonce "n2") = Ok ());
  Alcotest.(check bool) "n1 replay rejected" true
    (Freshness.check_and_update st (Message.F_nonce "n1") = Error Freshness.Replayed_nonce);
  Alcotest.(check int) "history grows (the §4.2 memory objection)" 4
    (Freshness.history_bytes st);
  Alcotest.(check int) "two entries" 2 (Freshness.history_length st)

let test_nonce_history_eviction_reenables_replay () =
  let st = Freshness.init (device ()) (Freshness.Nonce_history { max_entries = Some 2 }) in
  List.iter
    (fun n -> Alcotest.(check bool) n true (Freshness.check_and_update st (Message.F_nonce n) = Ok ()))
    [ "n1"; "n2"; "n3" ];
  (* n1 was evicted from the bounded history: its replay now passes *)
  Alcotest.(check bool) "evicted nonce replays" true
    (Freshness.check_and_update st (Message.F_nonce "n1") = Ok ())

let test_timestamp_window () =
  let d = clocked () in
  let st = Freshness.init d (Freshness.Timestamp { window_ms = 5000L }) in
  Device.idle d ~seconds:10.0 (* prover clock at 10s *);
  Alcotest.(check bool) "in window" true
    (Freshness.check_and_update st (Message.F_timestamp 9000L) = Ok ());
  Alcotest.(check bool) "replay rejected (monotonic)" true
    (match Freshness.check_and_update st (Message.F_timestamp 9000L) with
    | Error (Freshness.Stale_or_reordered_timestamp _) -> true
    | Ok () | Error _ -> false);
  Alcotest.(check bool) "reorder rejected" true
    (Freshness.check_and_update st (Message.F_timestamp 8500L) <> Ok ());
  Device.idle d ~seconds:20.0 (* clock at 30s *);
  Alcotest.(check bool) "delayed rejected" true
    (match Freshness.check_and_update st (Message.F_timestamp 20000L) with
    | Error (Freshness.Delayed_timestamp _) -> true
    | Ok () | Error _ -> false);
  Alcotest.(check bool) "future rejected" true
    (match Freshness.check_and_update st (Message.F_timestamp 99000L) with
    | Error (Freshness.Future_timestamp _) -> true
    | Ok () | Error _ -> false)

let test_timestamp_requires_clock () =
  Alcotest.check_raises "clock-less device"
    (Invalid_argument "Freshness.init: timestamp policy requires a clock") (fun () ->
      ignore (Freshness.init (device ()) (Freshness.Timestamp { window_ms = 1000L })))

let test_custom_time_source () =
  let now = ref 1000L in
  let st =
    Freshness.init ~now_ms_fn:(fun () -> !now) (device ())
      (Freshness.Timestamp { window_ms = 100L })
  in
  Alcotest.(check bool) "custom now accepted" true
    (Freshness.check_and_update st (Message.F_timestamp 950L) = Ok ());
  now := 2000L;
  Alcotest.(check bool) "custom now rejects stale" true
    (Freshness.check_and_update st (Message.F_timestamp 1000L) <> Ok ())

let test_custom_cell_isolated () =
  let d = device () in
  let st1 = Freshness.init d Freshness.Counter in
  let st2 = Freshness.init ~cell_addr:(Device.counter_addr d + 24) d Freshness.Counter in
  Alcotest.(check bool) "st1 accepts 5" true
    (Freshness.check_and_update st1 (Message.F_counter 5L) = Ok ());
  (* st2's cell is independent: a low counter is still fresh there *)
  Alcotest.(check bool) "st2 unaffected" true
    (Freshness.check_and_update st2 (Message.F_counter 1L) = Ok ())

(* plant a value in the 8-byte cell directly — the Adv_roam tampering the
   wraparound tests model *)
let tamper_cell d v =
  Ra_mcu.Cpu.store_u64 (Device.cpu d) (Device.counter_addr d) v

let test_counter_wrap_boundary () =
  let d = device () in
  let st = Freshness.init d Freshness.Counter in
  tamper_cell d (Int64.sub Int64.max_int 1L);
  Alcotest.(check bool) "max_int accepted from max_int - 1" true
    (Freshness.check_and_update st (Message.F_counter Int64.max_int) = Ok ());
  (* crossing into the "negative" half of the signed range is just the
     next point on the serial circle *)
  Alcotest.(check bool) "min_int accepted from max_int" true
    (Freshness.check_and_update st (Message.F_counter Int64.min_int) = Ok ());
  Alcotest.(check bool) "pre-boundary replay rejected" true
    (match Freshness.check_and_update st (Message.F_counter Int64.max_int) with
    | Error (Freshness.Stale_counter _) -> true
    | Ok () | Error _ -> false)

let test_counter_all_ones_not_bricked () =
  (* An unsigned strictly-greater check bricks the prover forever once
     the cell holds 0xFFFF..FF (nothing is unsigned-greater): the
     Adv_roam rollforward attack. Serial acceptance wraps instead. *)
  let d = device () in
  let st = Freshness.init d Freshness.Counter in
  tamper_cell d (-1L);
  Alcotest.(check bool) "0 accepted after all-ones (wrap)" true
    (Freshness.check_and_update st (Message.F_counter 0L) = Ok ());
  Alcotest.(check bool) "1 accepted" true
    (Freshness.check_and_update st (Message.F_counter 1L) = Ok ());
  Alcotest.(check bool) "post-wrap replay of all-ones rejected" true
    (match Freshness.check_and_update st (Message.F_counter (-1L)) with
    | Error (Freshness.Stale_counter { got = -1L; stored = 1L }) -> true
    | Ok () | Error _ -> false)

let test_counter_half_window_edge () =
  (* exactly 2^63 ahead is the ambiguous antipode of the circle: the
     serial difference is min_int, not positive, so acceptance is
     well-defined (rejected) rather than implementation-accidental *)
  let d = device () in
  let st = Freshness.init d Freshness.Counter in
  Alcotest.(check bool) "antipode rejected" true
    (Freshness.check_and_update st (Message.F_counter Int64.min_int) <> Ok ());
  Alcotest.(check bool) "one short of the antipode accepted" true
    (Freshness.check_and_update st (Message.F_counter Int64.max_int) = Ok ())

let qcheck_counter_sequences =
  QCheck.Test.make ~name:"freshness: counter accepts iff strictly increasing" ~count:100
    QCheck.(list_of_size Gen.(1 -- 20) (map Int64.of_int (int_range 1 1000)))
    (fun counters ->
      let st = Freshness.init (device ()) Freshness.Counter in
      let highest = ref 0L in
      List.for_all
        (fun c ->
          let expected = Int64.unsigned_compare c !highest > 0 in
          let actual = Freshness.check_and_update st (Message.F_counter c) = Ok () in
          if actual then highest := c;
          expected = actual)
        counters)

let qcheck_counter_serial_model =
  (* the full-range model: accepted iff the wrapped difference from the
     stored cell is a positive signed int64 (forward half-window) *)
  QCheck.Test.make ~name:"freshness: counter matches the serial-number model" ~count:200
    QCheck.(list_of_size Gen.(1 -- 20) int64)
    (fun counters ->
      let d = device () in
      let st = Freshness.init d Freshness.Counter in
      List.for_all
        (fun c ->
          let stored = Freshness.current_cell st in
          let expected = Int64.compare (Int64.sub c stored) 0L > 0 in
          let actual = Freshness.check_and_update st (Message.F_counter c) = Ok () in
          expected = actual
          && Freshness.current_cell st = (if expected then c else stored))
        counters)

let tests =
  [
    Alcotest.test_case "no freshness" `Quick test_no_freshness_accepts_anything;
    Alcotest.test_case "counter monotonic" `Quick test_counter_monotonic;
    Alcotest.test_case "counter gaps" `Quick test_counter_gaps_allowed;
    Alcotest.test_case "missing/wrong field" `Quick test_missing_and_wrong_fields;
    Alcotest.test_case "nonce history" `Quick test_nonce_history;
    Alcotest.test_case "nonce eviction re-enables replay" `Quick
      test_nonce_history_eviction_reenables_replay;
    Alcotest.test_case "timestamp window" `Quick test_timestamp_window;
    Alcotest.test_case "timestamp requires clock" `Quick test_timestamp_requires_clock;
    Alcotest.test_case "custom time source" `Quick test_custom_time_source;
    Alcotest.test_case "custom cell isolated" `Quick test_custom_cell_isolated;
    Alcotest.test_case "counter wrap boundary" `Quick test_counter_wrap_boundary;
    Alcotest.test_case "counter all-ones not bricked" `Quick
      test_counter_all_ones_not_bricked;
    Alcotest.test_case "counter half-window edge" `Quick test_counter_half_window_edge;
    QCheck_alcotest.to_alcotest qcheck_counter_sequences;
    QCheck_alcotest.to_alcotest qcheck_counter_serial_model;
  ]
