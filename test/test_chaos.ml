open Ra_core
module Impairment = Ra_net.Impairment

(* ---- Retry policy math ------------------------------------------------ *)

let test_retry_timeout_math () =
  let near msg expect got =
    Alcotest.(check bool)
      (Printf.sprintf "%s: %.6f ~ %.6f" msg expect got)
      true
      (Float.abs (expect -. got) < 1e-9)
  in
  let p =
    { Retry.max_attempts = 8; base_timeout_s = 0.5; multiplier = 2.0;
      max_timeout_s = 30.0; jitter = 0.0 }
  in
  near "attempt 1 = base" 0.5 (Retry.timeout_s p ~attempt:1 ~u:0.0);
  near "attempt 4 = base*8" 4.0 (Retry.timeout_s p ~attempt:4 ~u:0.0);
  near "attempt 8 capped" 30.0 (Retry.timeout_s p ~attempt:8 ~u:0.0);
  let j = { p with jitter = 0.2 } in
  near "jitter low edge" (0.5 *. 0.9) (Retry.timeout_s j ~attempt:1 ~u:0.0);
  near "jitter centered at u=0.5" 0.5 (Retry.timeout_s j ~attempt:1 ~u:0.5);
  near "jitter high edge" (0.5 *. 1.1)
    (Retry.timeout_s j ~attempt:1 ~u:(1.0 -. 1e-12));
  Alcotest.(check bool) "attempt 0 rejected" true
    (try ignore (Retry.timeout_s p ~attempt:0 ~u:0.0); false
     with Invalid_argument _ -> true)

let test_retry_validate () =
  let bad p =
    Alcotest.(check bool) "rejected" true
      (try Retry.validate p; false with Invalid_argument _ -> true)
  in
  Retry.validate Retry.default;
  Retry.validate Retry.no_retry;
  Retry.validate Retry.impatient;
  bad { Retry.default with max_attempts = 0 };
  bad { Retry.default with base_timeout_s = 0.0 };
  bad { Retry.default with multiplier = 0.5 };
  bad { Retry.default with jitter = 1.5 }

let prop_timeout_within_band =
  let gen = QCheck.Gen.(triple (int_range 1 12) (float_bound_exclusive 1.0) (float_bound_exclusive 1.0)) in
  QCheck.Test.make ~count:500
    ~name:"jittered timeout stays inside [1-j/2, 1+j/2] band of un-jittered"
    (QCheck.make gen ~print:(fun (a, u, j) ->
         Printf.sprintf "attempt=%d u=%f jitter=%f" a u j))
    (fun (attempt, u, jitter) ->
      let p = { Retry.default with jitter } in
      let plain =
        Retry.timeout_s { p with jitter = 0.0 } ~attempt ~u:0.0
      in
      let t = Retry.timeout_s p ~attempt ~u in
      t >= plain *. (1.0 -. (jitter /. 2.0)) -. 1e-9
      && t <= plain *. (1.0 +. (jitter /. 2.0)) +. 1e-9)

(* ---- Retry engine over the session ------------------------------------ *)

let test_benign_round_single_attempt () =
  let session = Session.create ~ram_size:1024 () in
  Session.advance_time session ~seconds:1.0;
  let round = Session.attest_round_r session in
  Alcotest.(check bool) "trusted" true
    (Verdict.accepted round.Session.r_verdict);
  Alcotest.(check int) "one attempt" 1 round.Session.r_attempts

let test_dead_wire_times_out () =
  let session = Session.create ~ram_size:1024 () in
  Session.advance_time session ~seconds:1.0;
  Session.set_impairment session
    (Some
       (Impairment.create
          ~to_prover:(Impairment.lossy 1.0)
          ~to_verifier:(Impairment.lossy 1.0)
          ~seed:5L ()));
  let round = Session.attest_round_r ~policy:Retry.impatient session in
  (match round.Session.r_verdict with
  | Verdict.Timed_out { attempts; waited_s } ->
    Alcotest.(check int) "all attempts used" Retry.impatient.Retry.max_attempts
      attempts;
    Alcotest.(check bool) "waited a positive while" true (waited_s > 0.0)
  | v -> Alcotest.failf "expected Timed_out, got %s" (Verdict.label v));
  Alcotest.(check int) "attempts reported"
    Retry.impatient.Retry.max_attempts round.Session.r_attempts

let counter_spec =
  Architecture.with_policy Architecture.trustlite_base Freshness.Counter

(* The tentpole's replay-safety property: whatever the wire does to the
   retransmissions, the prover's freshness cell only ever moves forward. *)
let prop_counter_monotone_under_retries =
  let gen = QCheck.Gen.(pair (float_bound_exclusive 0.6) (map Int64.of_int int)) in
  QCheck.Test.make ~count:25
    ~name:"freshness counter never regresses across retry interleavings"
    (QCheck.make gen ~print:(fun (loss, seed) ->
         Printf.sprintf "loss=%.3f seed=%Ld" loss seed))
    (fun (loss, seed) ->
      let session = Session.create ~spec:counter_spec ~ram_size:1024 () in
      Session.advance_time session ~seconds:1.0;
      Session.set_impairment session
        (Some
           (Impairment.create
              ~to_prover:
                { (Impairment.lossy loss) with duplicate = 0.1; reorder = 0.1 }
              ~to_verifier:
                { (Impairment.lossy loss) with duplicate = 0.1; reorder = 0.1 }
              ~seed ()));
      let cell () =
        Freshness.current_cell (Code_attest.freshness (Session.anchor session))
      in
      let monotone = ref true in
      let last = ref (cell ()) in
      for _ = 1 to 4 do
        ignore (Session.attest_round_r ~policy:Retry.impatient session);
        let now = cell () in
        if Int64.compare now !last < 0 then monotone := false;
        last := now
      done;
      !monotone)

let test_replayed_retransmission_rejected () =
  (* run a lossy round so several requests hit the wire, then replay an
     old recorded transmission: the anchor must reject it and produce no
     response for the verifier *)
  let session = Session.create ~spec:counter_spec ~ram_size:1024 () in
  Session.advance_time session ~seconds:1.0;
  Session.set_impairment session
    (Some
       (Impairment.create ~to_verifier:(Impairment.lossy 0.9) ~seed:7L ()));
  let round = Session.attest_round_r session in
  Alcotest.(check bool) "round converged" true
    (Verdict.accepted round.Session.r_verdict);
  Alcotest.(check bool) "took retransmissions" true
    (round.Session.r_attempts > 1);
  Session.set_impairment session None;
  let recorded = Adversary.recorded_requests session in
  Alcotest.(check bool) "several requests recorded" true
    (List.length recorded > 1);
  let rejected_before =
    (Code_attest.stats (Session.anchor session)).Code_attest.requests_rejected
  in
  let verdicts_before = List.length (Session.verdicts session) in
  List.iter (fun req -> Adversary.replay session req) recorded;
  ignore (Session.deliver_next_to_verifier session);
  let rejected_after =
    (Code_attest.stats (Session.anchor session)).Code_attest.requests_rejected
  in
  Alcotest.(check int) "every replay rejected"
    (rejected_before + List.length recorded)
    rejected_after;
  Alcotest.(check int) "verifier saw nothing new" verdicts_before
    (List.length (Session.verdicts session))

(* ---- chaos sweep ------------------------------------------------------ *)

let run_grid ~domains () =
  let fleet =
    Fleet.create ~ram_size:1024 ~names:[ "a"; "b"; "c" ] ()
  in
  Fleet.chaos_sweep ~seed:99L ~domains ~rounds_per_member:3
    ~losses:[ 0.0; 0.2 ]
    ~policies:[ ("default", Retry.default) ]
    fleet

let test_chaos_sweep_deterministic_across_domains () =
  Alcotest.(check bool) "1 domain = 4 domains" true
    (run_grid ~domains:1 () = run_grid ~domains:4 ())

let test_chaos_sweep_grid () =
  let fleet = Fleet.create ~ram_size:1024 ~names:[ "a"; "b"; "c"; "d" ] () in
  let grid =
    Fleet.chaos_sweep ~seed:7L ~rounds_per_member:5 ~losses:[ 0.0; 0.2 ]
      ~policies:[ ("default", Retry.default) ]
      fleet
  in
  Alcotest.(check int) "two cells" 2 (List.length grid);
  let pristine = List.nth grid 0 and lossy = List.nth grid 1 in
  Alcotest.(check (float 0.0)) "pristine converges fully" 100.0
    (Fleet.convergence_pct pristine);
  Alcotest.(check (float 0.0)) "pristine needs one attempt" 1.0
    pristine.Fleet.c_mean_attempts;
  Alcotest.(check bool) "lossy converges >= 99%" true
    (Fleet.convergence_pct lossy >= 99.0);
  Alcotest.(check bool) "lossy retransmits" true
    (lossy.Fleet.c_mean_attempts > 1.0);
  Alcotest.(check bool) "percentiles ordered" true
    (lossy.Fleet.c_p50_s <= lossy.Fleet.c_p90_s
    && lossy.Fleet.c_p90_s <= lossy.Fleet.c_p99_s);
  Alcotest.(check bool) "grid remembered" true (Fleet.last_chaos fleet = grid);
  let snapshot = Fleet.health_snapshot fleet in
  Alcotest.(check bool) "snapshot carries grid" true
    (snapshot.Fleet.s_chaos = grid);
  Alcotest.(check int) "everyone healthy after chaos" 4
    snapshot.Fleet.s_healthy

let test_classify_verdict () =
  let check v expect =
    Alcotest.(check string) (Verdict.label v)
      (Fleet.health_label expect)
      (Fleet.health_label (Fleet.classify_verdict v))
  in
  check Verdict.Trusted Fleet.Healthy;
  check Verdict.Untrusted_state Fleet.Compromised;
  check Verdict.Invalid_response Fleet.Compromised;
  check (Verdict.Fault { fault_addr = 16; fault_code = "W" }) Fleet.Compromised;
  check Verdict.Bad_auth Fleet.Unresponsive;
  check (Verdict.Not_fresh Verdict.Replayed_nonce) Fleet.Unresponsive;
  check (Verdict.Timed_out { attempts = 8; waited_s = 60.0 }) Fleet.Unresponsive

let test_chaos_sweep_validation () =
  let fleet = Fleet.create ~ram_size:1024 ~names:[ "a" ] () in
  let bad f =
    Alcotest.(check bool) "rejected" true
      (try ignore (f ()); false with Invalid_argument _ -> true)
  in
  bad (fun () ->
      Fleet.chaos_sweep ~losses:[]
        ~policies:[ ("default", Retry.default) ]
        fleet);
  bad (fun () -> Fleet.chaos_sweep ~losses:[ 0.1 ] ~policies:[] fleet);
  bad (fun () ->
      Fleet.chaos_sweep ~losses:[ 0.1 ]
        ~policies:[ ("bad", { Retry.default with max_attempts = 0 }) ]
        fleet)

let tests =
  [
    Alcotest.test_case "retry timeout math" `Quick test_retry_timeout_math;
    Alcotest.test_case "retry validate" `Quick test_retry_validate;
    QCheck_alcotest.to_alcotest prop_timeout_within_band;
    Alcotest.test_case "benign round: one attempt" `Quick
      test_benign_round_single_attempt;
    Alcotest.test_case "dead wire times out" `Quick test_dead_wire_times_out;
    QCheck_alcotest.to_alcotest prop_counter_monotone_under_retries;
    Alcotest.test_case "replayed retransmission rejected" `Quick
      test_replayed_retransmission_rejected;
    Alcotest.test_case "chaos sweep deterministic across domains" `Slow
      test_chaos_sweep_deterministic_across_domains;
    Alcotest.test_case "chaos sweep grid" `Slow test_chaos_sweep_grid;
    Alcotest.test_case "classify verdict" `Quick test_classify_verdict;
    Alcotest.test_case "chaos sweep validation" `Quick
      test_chaos_sweep_validation;
  ]
