open Ra_crypto

let check = Alcotest.(check string)

let test_to_hex () =
  check "empty" "" (Hexutil.to_hex "");
  check "abc" "616263" (Hexutil.to_hex "abc");
  check "binary" "00ff10" (Hexutil.to_hex "\x00\xff\x10")

let test_of_hex () =
  check "round" "attest" (Hexutil.of_hex (Hexutil.to_hex "attest"));
  check "upper" "\xde\xad\xbe\xef" (Hexutil.of_hex "DEADBEEF");
  Alcotest.check_raises "odd length" (Invalid_argument "Hexutil.of_hex: odd length")
    (fun () -> ignore (Hexutil.of_hex "abc"));
  Alcotest.check_raises "bad digit" (Invalid_argument "Hexutil.of_hex: bad digit")
    (fun () -> ignore (Hexutil.of_hex "zz"))

let test_xor () =
  check "self is zero" "\x00\x00" (Hexutil.xor "ab" "ab");
  check "identity" "ab" (Hexutil.xor "ab" "\x00\x00");
  Alcotest.check_raises "length mismatch" (Invalid_argument "Hexutil.xor") (fun () ->
      ignore (Hexutil.xor "a" "ab"))

let test_equal_ct () =
  Alcotest.(check bool) "equal" true (Hexutil.equal_ct "secret" "secret");
  Alcotest.(check bool) "differs" false (Hexutil.equal_ct "secret" "secreT");
  Alcotest.(check bool) "length" false (Hexutil.equal_ct "secret" "secrets");
  Alcotest.(check bool) "empty" true (Hexutil.equal_ct "" "")

let test_chunks () =
  Alcotest.(check (list string)) "exact" [ "ab"; "cd" ] (Hexutil.chunks 2 "abcd");
  Alcotest.(check (list string)) "ragged" [ "abc"; "d" ] (Hexutil.chunks 3 "abcd");
  Alcotest.(check (list string)) "empty" [] (Hexutil.chunks 4 "");
  Alcotest.check_raises "bad size" (Invalid_argument "Hexutil.chunks") (fun () ->
      ignore (Hexutil.chunks 0 "x"))

let qcheck_roundtrip =
  QCheck.Test.make ~name:"of_hex/to_hex roundtrip" ~count:200
    QCheck.(string_of_size Gen.(0 -- 64))
    (fun s -> Hexutil.of_hex (Hexutil.to_hex s) = s)

let qcheck_xor_involution =
  QCheck.Test.make ~name:"xor is an involution" ~count:200
    QCheck.(pair (string_of_size Gen.(return 16)) (string_of_size Gen.(return 16)))
    (fun (a, b) -> Hexutil.xor (Hexutil.xor a b) b = a)

let qcheck_chunks_concat =
  QCheck.Test.make ~name:"chunks concatenate back" ~count:200
    QCheck.(pair (int_range 1 17) (string_of_size Gen.(0 -- 100)))
    (fun (n, s) -> String.concat "" (Hexutil.chunks n s) = s)

let qcheck_equal_ct_position_independent =
  (* the runtime path folds over every byte pair whatever the data: a
     flip at any position — first byte, last byte, anywhere — must be
     caught, and the verdict must agree with structural equality. An
     early-exit implementation would still pass the [=] check but leak
     the mismatch position through timing; this property pins the
     correctness half of the contract across all positions. *)
  QCheck.Test.make ~name:"equal_ct agrees with (=) at every mismatch position"
    ~count:300
    QCheck.(pair (string_of_size Gen.(1 -- 64)) small_nat)
    (fun (s, k) ->
      let i = k mod String.length s in
      let b = Bytes.of_string s in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
      let flipped = Bytes.to_string b in
      Hexutil.equal_ct s s
      && (not (Hexutil.equal_ct s flipped))
      && not (Hexutil.equal_ct flipped s))

let qcheck_equal_ct_length_gate =
  (* mismatched lengths are rejected before any byte comparison: a
     proper prefix (every shared byte equal) still compares unequal, and
     no out-of-bounds access can occur in either argument order *)
  QCheck.Test.make ~name:"equal_ct rejects mismatched lengths without comparing bytes"
    ~count:300
    QCheck.(pair (string_of_size Gen.(0 -- 64)) (string_of_size Gen.(1 -- 16)))
    (fun (a, suffix) ->
      let longer = a ^ suffix in
      (not (Hexutil.equal_ct a longer)) && not (Hexutil.equal_ct longer a))

let tests =
  [
    Alcotest.test_case "to_hex" `Quick test_to_hex;
    Alcotest.test_case "of_hex" `Quick test_of_hex;
    Alcotest.test_case "xor" `Quick test_xor;
    Alcotest.test_case "equal_ct" `Quick test_equal_ct;
    Alcotest.test_case "chunks" `Quick test_chunks;
    QCheck_alcotest.to_alcotest qcheck_roundtrip;
    QCheck_alcotest.to_alcotest qcheck_xor_involution;
    QCheck_alcotest.to_alcotest qcheck_chunks_concat;
    QCheck_alcotest.to_alcotest qcheck_equal_ct_position_independent;
    QCheck_alcotest.to_alcotest qcheck_equal_ct_length_gate;
  ]
