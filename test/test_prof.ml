(* The cycle-exact profiler: PC-sample accumulators and their folded
   export, the ISA sampler's call-stack reconstruction and exact cycle
   attribution, session phase attribution, the shard-invariant fleet
   merge, and the Perfetto counter-track export. *)
open Ra_core
module Profiler = Ra_obs.Profiler
module Memory = Ra_mcu.Memory
module Region = Ra_mcu.Region
module Ea_mpu = Ra_mcu.Ea_mpu
module Cpu = Ra_mcu.Cpu
module Device = Ra_mcu.Device
module Timing = Ra_mcu.Timing

(* --- Pc accumulator --- *)

let test_pc_folded_sorted_and_sanitized () =
  let pc = Profiler.Pc.create () in
  Profiler.Pc.add pc ~frames:[ "rom"; "b" ] ~cycles:10L;
  Profiler.Pc.add pc ~frames:[ "rom"; "a" ] ~cycles:1L;
  Profiler.Pc.add pc ~frames:[ "rom"; "b" ] ~cycles:5L;
  (* ';' and ' ' are structural in the folded format: hostile frame
     names must be sanitized, not emitted raw *)
  Profiler.Pc.add pc ~frames:[ "we;ird frame"; "\n"; "" ] ~cycles:2L;
  Alcotest.(check string) "sorted, merged, sanitized"
    "rom;a 1\nrom;b 15\nwe,ird_frame;?;? 2\n"
    (Profiler.Pc.folded pc);
  Alcotest.(check int) "samples" 4 (Profiler.Pc.samples pc);
  Alcotest.(check int64) "cycles" 18L (Profiler.Pc.cycles pc);
  Alcotest.(check int64) "leaf filter" 15L
    (Profiler.Pc.cycles_matching pc ~f:(fun leaf -> leaf = "b"))

let test_pc_absorb_grouping_invariant () =
  let stacks =
    [
      ([ "r"; "f" ], 3L); ([ "r"; "g" ], 7L); ([ "r"; "f" ], 2L);
      ([ "r"; "h"; "i" ], 11L); ([ "r"; "g" ], 1L); ([ "r" ], 4L);
    ]
  in
  let merged groups =
    let dst = Profiler.Pc.create () in
    List.iter
      (fun group ->
        let shard = Profiler.Pc.create () in
        List.iter
          (fun (frames, cycles) -> Profiler.Pc.add shard ~frames ~cycles)
          group;
        Profiler.Pc.absorb dst shard)
      groups;
    Profiler.Pc.folded dst
  in
  let base = merged [ stacks ] in
  let halves =
    merged [ List.filteri (fun i _ -> i < 3) stacks;
             List.filteri (fun i _ -> i >= 3) stacks ]
  in
  let singles = merged (List.map (fun s -> [ s ]) stacks) in
  Alcotest.(check string) "two shards = one" base halves;
  Alcotest.(check string) "one shard per sample = one" base singles

(* --- ISA sampler: call stacks, symbolization, exact attribution --- *)

let sampled_run ~period src =
  let memory =
    Memory.create
      [
        Region.make ~name:"app" ~base:0x0000 ~size:0x1000 ~kind:Region.Flash;
        Region.make ~name:"ram" ~base:0x4000 ~size:0x1000 ~kind:Region.Ram;
      ]
  in
  let program =
    match Ra_isa.Asm.assemble ~origin:0x0000 src with
    | Ok p -> p
    | Error e -> Alcotest.failf "assembly failed: %a" Ra_isa.Asm.pp_error e
  in
  Ra_isa.Asm.load memory program;
  Memory.seal_rom memory;
  let cpu = Cpu.create memory (Ea_mpu.create ~capacity:0) ~clock_hz:24_000_000 in
  let pc = Profiler.Pc.create () in
  let sampler = Ra_isa.Sampler.create ~period ~memory pc in
  Ra_isa.Sampler.add_program sampler program;
  let core = Ra_isa.Core.create cpu ~pc:0x0000 ~sp:0x5000 in
  Ra_isa.Sampler.attach sampler core;
  let state, _ = Ra_isa.Core.run core in
  Ra_isa.Sampler.flush sampler;
  Alcotest.(check bool) "halted" true (state = Ra_isa.Core.Halted);
  (pc, Cpu.work_cycles cpu)

let nested_src =
  {|
  start:
    mov r1, #7
    call outer
    halt
  outer:
    add r1, #1
    call inner
    ret
  inner:
    add r1, r1
    ret
  |}

let test_sampler_symbolized_stacks () =
  let pc, _ = sampled_run ~period:1 nested_src in
  let keys =
    List.map
      (fun (frames, _, _) -> String.concat ";" frames)
      (Profiler.Pc.rows pc)
  in
  Alcotest.(check bool) "top level under region root" true
    (List.mem "app;start" keys);
  Alcotest.(check bool) "call pushes a frame" true
    (List.exists
       (fun k -> k = "app;outer;outer" || k = "app;outer;inner;inner") keys);
  Alcotest.(check bool) "nested call keeps the caller" true
    (List.mem "app;outer;inner;inner" keys);
  Alcotest.(check bool) "everything symbolized" true
    (List.for_all
       (fun k -> not (Ra_net.Trace.contains_substring ~needle:"0x" k))
       keys)

let test_sampler_attribution_exact () =
  (* whatever the period, flush makes attributed cycles equal executed
     cycles exactly — nothing lost to rounding *)
  List.iter
    (fun period ->
      let pc, executed = sampled_run ~period nested_src in
      Alcotest.(check int64)
        (Printf.sprintf "period %d conserves cycles" period)
        executed (Profiler.Pc.cycles pc))
    [ 1; 3; 64; 10_000 ]

let test_sampler_deterministic () =
  let folded () =
    let pc, _ = sampled_run ~period:4 nested_src in
    Profiler.Pc.folded pc
  in
  Alcotest.(check string) "same folded across runs" (folded ()) (folded ())

let test_isa_sha1_flame () =
  let memory =
    Memory.create
      [
        Region.make ~name:"rom_attest" ~base:0x1000 ~size:8192 ~kind:Region.Rom;
        Region.make ~name:"ram" ~base:0x10000 ~size:4096 ~kind:Region.Ram;
      ]
  in
  let sha = Ra_isa.Sha1_asm.install memory ~origin:0x1000 ~scratch_addr:0x10000 in
  Memory.seal_rom memory;
  let cpu = Cpu.create memory (Ea_mpu.create ~capacity:0) ~clock_hz:24_000_000 in
  let pc = Profiler.Pc.create () in
  let sampler = Ra_isa.Sampler.create ~memory pc in
  Ra_isa.Sha1_asm.set_sampler sha (Some sampler);
  let digest = Ra_isa.Sha1_asm.digest sha cpu "abc" in
  Ra_isa.Sampler.flush sampler;
  Alcotest.(check string) "digest still correct under sampling"
    (Ra_crypto.Hexutil.to_hex (Ra_crypto.Sha1.digest "abc"))
    (Ra_crypto.Hexutil.to_hex digest);
  Alcotest.(check int64) "all interpreted cycles attributed"
    (Ra_isa.Sha1_asm.last_run_cycles sha)
    (Profiler.Pc.cycles pc);
  let total = Int64.to_float (Profiler.Pc.cycles pc) in
  let symbolized =
    Int64.to_float
      (Profiler.Pc.cycles_matching pc ~f:(fun leaf ->
           not (String.length leaf >= 2 && String.sub leaf 0 2 = "0x")))
  in
  Alcotest.(check bool) ">= 90% of cycles symbolized" true
    (symbolized /. total >= 0.9);
  Alcotest.(check bool) "stacks root at the ROM region" true
    (List.for_all
       (fun (frames, _, _) -> List.hd frames = "rom_attest")
       (Profiler.Pc.rows pc))

(* --- session phase attribution --- *)

let test_session_phases_and_trace_ids () =
  let s = Session.create ~ram_size:2048 () in
  ignore (Session.enable_tracing s);
  let p = Session.enable_profiling s in
  Session.advance_time s ~seconds:1.0;
  let r = Session.attest_round_r s in
  Alcotest.(check bool) "round converged" true (r.Session.r_verdict = Verdict.Trusted);
  let totals = Profiler.Phases.totals p.Profiler.phases in
  List.iter
    (fun phase ->
      Alcotest.(check bool) (phase ^ " attributed") true
        (List.mem_assoc phase totals))
    [ "auth"; "freshness"; "mac"; "radio" ];
  let mac_cycles, mac_nj, _ = List.assoc "mac" totals in
  Alcotest.(check bool) "mac cycles positive" true (Int64.compare mac_cycles 0L > 0);
  Alcotest.(check bool) "mac energy positive" true (mac_nj > 0.0);
  let samples = Profiler.Phases.samples p.Profiler.phases in
  Alcotest.(check bool) "samples tagged with the device" true
    (List.for_all (fun ps -> ps.Profiler.ps_device = "prover") samples);
  Alcotest.(check bool) "samples carry the round's trace id" true
    (samples <> []
    && List.for_all (fun ps -> ps.Profiler.ps_trace_id <> None) samples)

(* satellite: ring wraparound with tracing and profiling co-enabled *)
let test_phase_ring_wraparound () =
  let s = Session.create ~ram_size:2048 () in
  ignore (Session.enable_tracing s);
  let p = Session.enable_profiling ~capacity:3 s in
  for _ = 1 to 3 do
    Session.advance_time s ~seconds:1.0;
    ignore (Session.attest_round_r s)
  done;
  Alcotest.(check int) "ring holds exactly its capacity" 3
    (Profiler.Phases.length p.Profiler.phases);
  Alcotest.(check bool) "older samples evicted" true
    (Profiler.Phases.dropped p.Profiler.phases > 0);
  (* totals keep counting past the wraparound: one auth per round *)
  let _, _, auth_n = List.assoc "auth" (Profiler.Phases.totals p.Profiler.phases) in
  Alcotest.(check int) "totals unaffected by eviction" 3 auth_n;
  (* the survivors are the newest samples, oldest first *)
  let at = List.map (fun ps -> ps.Profiler.ps_at) (Profiler.Phases.samples p.Profiler.phases) in
  Alcotest.(check bool) "survivors chronological" true
    (List.sort compare at = at)

(* --- fleet merge: byte-identical at every shard count --- *)

let test_fleet_profile_shard_invariant () =
  let names = List.init 5 (Printf.sprintf "dev-%d") in
  let fleet = Fleet.create ~ram_size:2048 ~names () in
  Fleet.enable_tracing fleet;
  Fleet.enable_profiling fleet;
  Fleet.advance fleet ~seconds:1.0;
  ignore (Fleet.sweep fleet);
  let export k =
    let p = Fleet.profile ~shards:k fleet in
    (Profiler.folded p, Ra_obs.Export.profile_jsonl p)
  in
  let base = export 1 in
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "%d shards byte-identical to 1" k)
        true
        (export k = base))
    [ 2; 3; 5 ];
  let p = Fleet.profile fleet in
  Alcotest.(check int) "no phase samples dropped by the merge" 0
    (Profiler.Phases.dropped p.Profiler.phases);
  let devices =
    List.sort_uniq compare
      (List.map
         (fun ps -> ps.Profiler.ps_device)
         (Profiler.Phases.samples p.Profiler.phases))
  in
  Alcotest.(check (list string)) "every member contributed" (List.sort compare names)
    devices

(* --- counter tracks and their Perfetto export (satellite) --- *)

let test_track_merge_grouping_invariant () =
  let mk points =
    let t = Profiler.Track.create "depth" in
    List.iter (fun (at, v) -> Profiler.Track.push t ~at v) points;
    t
  in
  let a = mk [ (0.0, 1.0); (1.0, 3.0) ] in
  let b = mk [ (0.5, 2.0); (1.0, 4.0) ] in
  let direct = Profiler.Track.merge ~name:"depth" [ a; b ] in
  let nested =
    Profiler.Track.merge ~name:"depth"
      [ Profiler.Track.merge ~name:"x" [ a ]; Profiler.Track.merge ~name:"y" [ b ] ]
  in
  Alcotest.(check bool) "chronological with stable ties" true
    (Profiler.Track.points direct
    = [ (0.0, 1.0); (0.5, 2.0); (1.0, 3.0); (1.0, 4.0) ]);
  Alcotest.(check bool) "grouping-invariant" true
    (Profiler.Track.points direct = Profiler.Track.points nested)

let test_perfetto_counter_track () =
  let track = Profiler.Track.create "ra_sched_queue_depth" in
  Profiler.Track.push track ~at:0.0 1.0;
  Profiler.Track.push track ~at:0.5 2.0;
  let j = Ra_obs.Export.perfetto ~counters:[ track ] [] in
  let evs =
    match Ra_obs.Json.member "traceEvents" j with
    | Some (Ra_obs.Json.Arr evs) -> evs
    | _ -> Alcotest.fail "no traceEvents"
  in
  let counters =
    List.filter
      (fun ev -> Ra_obs.Json.member "ph" ev = Some (Ra_obs.Json.Str "C"))
      evs
  in
  Alcotest.(check int) "one C event per point" 2 (List.length counters);
  Alcotest.(check bool) "counter events on pid 0 with us timestamps" true
    (List.for_all
       (fun ev ->
         Ra_obs.Json.member "pid" ev = Some (Ra_obs.Json.Num 0.0)
         && Ra_obs.Json.member "name" ev
            = Some (Ra_obs.Json.Str "ra_sched_queue_depth"))
       counters);
  Alcotest.(check bool) "values ride in args.value" true
    (List.map
       (fun ev ->
         Option.bind (Ra_obs.Json.member "args" ev) (Ra_obs.Json.member "value"))
       counters
    = [ Some (Ra_obs.Json.Num 1.0); Some (Ra_obs.Json.Num 2.0) ]);
  Alcotest.(check bool) "counters process is named" true
    (List.exists
       (fun ev ->
         Ra_obs.Json.member "ph" ev = Some (Ra_obs.Json.Str "M")
         && Ra_obs.Json.member "pid" ev = Some (Ra_obs.Json.Num 0.0))
       evs)

let test_profile_jsonl_roundtrip () =
  let p = Profiler.create () in
  Profiler.Pc.add p.Profiler.pc ~frames:[ "rom"; "we\"ird\\name" ] ~cycles:5L;
  Profiler.Phases.record p.Profiler.phases
    {
      Profiler.ps_at = 1.5;
      ps_trace_id = Some 3;
      ps_device = "dev \"quoted\"";
      ps_phase = "mac";
      ps_cycles = 100L;
      ps_nj = 50.0;
    };
  match Ra_obs.Export.parse_jsonl (Ra_obs.Export.profile_jsonl p) with
  | Error e -> Alcotest.failf "profile jsonl unparseable: %s" e
  | Ok lines ->
    Alcotest.(check int) "stack + total + sample lines" 3 (List.length lines);
    let stack =
      List.find
        (fun l -> Ra_obs.Json.member "kind" l = Some (Ra_obs.Json.Str "stack"))
        lines
    in
    (match Ra_obs.Json.member "frames" stack with
    | Some (Ra_obs.Json.Arr [ Ra_obs.Json.Str "rom"; Ra_obs.Json.Str f ]) ->
      Alcotest.(check string) "hostile frame survives the round-trip"
        "we\"ird\\name" f
    | _ -> Alcotest.fail "stack line lost its frames");
    let sample =
      List.find
        (fun l ->
          Ra_obs.Json.member "kind" l = Some (Ra_obs.Json.Str "phase_sample"))
        lines
    in
    Alcotest.(check (option string)) "hostile device name survives"
      (Some "dev \"quoted\"")
      (Option.bind (Ra_obs.Json.member "device" sample) Ra_obs.Json.as_string)

let tests =
  [
    Alcotest.test_case "pc folded sorted+sanitized" `Quick
      test_pc_folded_sorted_and_sanitized;
    Alcotest.test_case "pc absorb grouping-invariant" `Quick
      test_pc_absorb_grouping_invariant;
    Alcotest.test_case "sampler symbolized stacks" `Quick
      test_sampler_symbolized_stacks;
    Alcotest.test_case "sampler attribution exact" `Quick
      test_sampler_attribution_exact;
    Alcotest.test_case "sampler deterministic" `Quick test_sampler_deterministic;
    Alcotest.test_case "in-ISA sha1 flame graph" `Quick test_isa_sha1_flame;
    Alcotest.test_case "session phases + trace ids" `Quick
      test_session_phases_and_trace_ids;
    Alcotest.test_case "phase ring wraparound" `Quick test_phase_ring_wraparound;
    Alcotest.test_case "fleet profile shard-invariant" `Quick
      test_fleet_profile_shard_invariant;
    Alcotest.test_case "track merge grouping-invariant" `Quick
      test_track_merge_grouping_invariant;
    Alcotest.test_case "perfetto counter track" `Quick test_perfetto_counter_track;
    Alcotest.test_case "profile jsonl round-trip" `Quick
      test_profile_jsonl_roundtrip;
  ]
