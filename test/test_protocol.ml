(* End-to-end protocol: Code_attest + Verifier + Session. *)
open Ra_core
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Timing = Ra_mcu.Timing

let small_session ?spec () = Session.create ?spec ~ram_size:4096 ()

let test_benign_round_trusted () =
  let s = small_session () in
  Session.advance_time s ~seconds:1.0;
  (match Session.attest_round s with
  | Some Verdict.Trusted -> ()
  | Some v -> Alcotest.failf "expected trusted, got %a" Verdict.pp v
  | None -> Alcotest.fail "no response")

let test_modified_memory_detected () =
  let s = small_session () in
  Session.advance_time s ~seconds:1.0;
  (* malware modifies attested RAM and stays resident *)
  let d = Session.device s in
  Cpu.store_bytes (Device.cpu d) (Device.attested_base d) "INFECTED";
  (match Session.attest_round s with
  | Some Verdict.Untrusted_state -> ()
  | Some v -> Alcotest.failf "expected untrusted, got %a" Verdict.pp v
  | None -> Alcotest.fail "no response")

let test_forged_request_rejected () =
  let s = small_session () in
  Session.advance_time s ~seconds:1.0;
  let forged =
    {
      Message.challenge = "evil";
      freshness = Message.F_timestamp 1000L;
      tag = Message.Tag_none;
    }
  in
  Session.deliver_to_prover s forged;
  let stats = Code_attest.stats (Session.anchor s) in
  Alcotest.(check int) "no attestation" 0 stats.Code_attest.attestations_performed;
  Alcotest.(check int) "rejected" 1 stats.Code_attest.requests_rejected

let test_wrong_mac_rejected () =
  let s = small_session () in
  Session.advance_time s ~seconds:1.0;
  let req = Session.send_request s in
  let tampered = { req with Message.challenge = req.Message.challenge ^ "x" } in
  Session.deliver_to_prover s tampered;
  Alcotest.(check int) "rejected" 1
    (Code_attest.stats (Session.anchor s)).Code_attest.requests_rejected

let test_attestation_charges_cycles_and_energy () =
  let s = small_session () in
  Session.advance_time s ~seconds:1.0;
  let d = Session.device s in
  let before = Cpu.work_cycles (Device.cpu d) in
  let _ = Session.attest_round s in
  let spent = Int64.sub (Cpu.work_cycles (Device.cpu d)) before in
  (* at minimum the memory MAC of 4 KB plus request authentication *)
  let mac = Timing.memory_mac_cycles ~bytes_len:4096 in
  Alcotest.(check bool) "at least the MAC cost" true (Int64.compare spent mac >= 0);
  Alcotest.(check bool) "energy consumed" true
    (Ra_mcu.Energy.consumed_joules (Device.energy d) > 0.0)

let test_unauthenticated_spec_attests_bogus () =
  (* the §3.1 victim: no request authentication *)
  let s = small_session ~spec:Architecture.unprotected () in
  let bogus =
    { Message.challenge = "any"; freshness = Message.F_none; tag = Message.Tag_none }
  in
  Session.deliver_to_prover s bogus;
  Alcotest.(check int) "attested a bogus request" 1
    (Code_attest.stats (Session.anchor s)).Code_attest.attestations_performed

let test_response_echo_checked () =
  let s = small_session () in
  Session.advance_time s ~seconds:1.0;
  let req = Session.send_request s in
  let _ = Session.deliver_next_to_prover s in
  (* tamper the response's echoed challenge in flight *)
  (match Ra_net.Channel.undelivered (Session.channel s) with
  | [ sent ] ->
    (match Message.wire_of_bytes sent.Ra_net.Channel.payload with
    | Some (Message.Response resp) ->
      let tampered = { resp with Message.echo_challenge = "spoof" } in
      Ra_net.Channel.deliver (Session.channel s) ~dst:Ra_net.Channel.Verifier_side
        (Message.wire_to_bytes (Message.Response tampered));
      (* unsolicited (unknown challenge) responses are dropped: no verdict *)
      Alcotest.(check int) "no verdict" 0 (List.length (Session.verdicts s));
      ignore req
    | Some (Message.Request _ | Message.Sync_request _ | Message.Sync_response _
           | Message.Service_request _ | Message.Service_ack _
           | Message.Hs_init _ | Message.Hs_resp _ | Message.Hs_fin _
           | Message.Record _)
    | None ->
      Alcotest.fail "expected response on wire")
  | l -> Alcotest.failf "expected one pending message, got %d" (List.length l))

let test_all_schemes_end_to_end () =
  List.iter
    (fun scheme ->
      let spec =
        Architecture.with_scheme
          (Architecture.with_policy Architecture.trustlite_base Freshness.Counter)
          (Some scheme)
      in
      let spec = { spec with Architecture.clock_impl = Device.Clock_none } in
      let s = small_session ~spec () in
      match Session.attest_round s with
      | Some Verdict.Trusted -> ()
      | Some v ->
        Alcotest.failf "%a: got %a" Timing.pp_auth_scheme scheme Verdict.pp v
      | None -> Alcotest.failf "%a: no response" Timing.pp_auth_scheme scheme)
    [
      Timing.Auth_hmac_sha1;
      Timing.Auth_aes128_cbc_mac;
      Timing.Auth_speck64_cbc_mac;
      Timing.Auth_ecdsa_verify;
    ]

let test_counter_policy_round_robin () =
  let spec =
    { (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
      Architecture.clock_impl = Device.Clock_none }
  in
  let s = small_session ~spec () in
  (* several consecutive rounds all succeed: counters advance in step *)
  List.iter
    (fun i ->
      match Session.attest_round s with
      | Some Verdict.Trusted -> ()
      | Some _ | None -> Alcotest.failf "round %d failed" i)
    [ 1; 2; 3; 4; 5 ]

let test_malformed_frames_dropped () =
  let s = small_session () in
  let device = Session.device s in
  let before_energy = Ra_mcu.Energy.consumed_joules (Device.energy device) in
  Session.deliver_frame_to_prover s "";
  Session.deliver_frame_to_prover s "garbage that is not a frame";
  Session.deliver_frame_to_prover s (String.make 4096 '\xff');
  let stats = Code_attest.stats (Session.anchor s) in
  Alcotest.(check int) "anchor never invoked" 0 stats.Code_attest.requests_seen;
  (* receiving junk still costs radio energy *)
  Alcotest.(check bool) "radio energy charged" true
    (Ra_mcu.Energy.consumed_joules (Device.energy device) > before_energy);
  (* the session still works afterwards *)
  Session.advance_time s ~seconds:1.0;
  (match Session.attest_round s with
  | Some Verdict.Trusted -> ()
  | Some _ | None -> Alcotest.fail "session broken by garbage frames")

let test_bitexact_frame_replay_rejected () =
  let s = small_session () in
  Session.advance_time s ~seconds:1.0;
  let req = Session.send_request s in
  let _ = Session.deliver_next_to_prover s in
  let _ = Session.deliver_next_to_verifier s in
  (* replay the exact recorded frame bytes *)
  (match Ra_net.Channel.transcript (Session.channel s) with
  | frame :: _ -> Session.deliver_frame_to_prover s frame.Ra_net.Channel.payload
  | [] -> Alcotest.fail "empty transcript");
  let stats = Code_attest.stats (Session.anchor s) in
  Alcotest.(check int) "single attestation" 1 stats.Code_attest.attestations_performed;
  Alcotest.(check int) "frame replay rejected" 1 stats.Code_attest.requests_rejected;
  ignore req

let test_code_update_with_flash_attestation () =
  (* with attest_app_flash the measurement covers code: an update changes
     the verdict until the verifier re-provisions its reference image *)
  let spec =
    {
      (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
      Architecture.clock_impl = Device.Clock_none;
      spec_name = "flash-attested";
      attest_app_flash = true;
    }
  in
  let s = small_session ~spec () in
  (match Session.attest_round s with
  | Some Verdict.Trusted -> ()
  | Some _ | None -> Alcotest.fail "initial round should be trusted");
  (* an authorized code update through the service layer *)
  let svc =
    Service.install (Session.device s) ~scheme:(Some Timing.Auth_hmac_sha1)
      ~policy:Freshness.Counter
  in
  let update =
    Service.make_request ~sym_key:"K_attest_0123456789."
      ~scheme:(Some Timing.Auth_hmac_sha1) ~freshness:(Message.F_counter 1L)
      (Service.Code_update { image = "firmware v2" })
  in
  (match Service.handle_r svc update with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "update rejected: %a" Verdict.pp e);
  (* the measurement now differs from the verifier's reference *)
  (match Session.attest_round s with
  | Some Verdict.Untrusted_state -> ()
  | Some v -> Alcotest.failf "expected untrusted after update, got %a" Verdict.pp v
  | None -> Alcotest.fail "no response");
  (* verifier learns the new good state; next sweep is green again *)
  Verifier.set_reference_image (Session.verifier s)
    (Code_attest.measure_memory (Session.anchor s));
  (match Session.attest_round s with
  | Some Verdict.Trusted -> ()
  | Some v -> Alcotest.failf "expected trusted after re-provisioning, got %a"
                Verdict.pp v
  | None -> Alcotest.fail "no response")

let test_flash_attestation_costs_more () =
  let base_spec =
    {
      (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
      Architecture.clock_impl = Device.Clock_none;
    }
  in
  let work spec =
    let s = small_session ~spec () in
    let cpu = Device.cpu (Session.device s) in
    let before = Cpu.work_cycles cpu in
    let _ = Session.attest_round s in
    Int64.sub (Cpu.work_cycles cpu) before
  in
  let ram_only = work base_spec in
  let with_flash = work { base_spec with Architecture.attest_app_flash = true } in
  (* 64 KB of flash at 0.092 ms per 64-byte block on top of the RAM MAC *)
  let expected_extra = Timing.memory_mac_cycles ~bytes_len:(65536 + 4096) in
  Alcotest.(check bool) "flash sweep costs more" true
    (Int64.compare with_flash ram_only > 0);
  Alcotest.(check bool) "cost grows by the flash MAC" true
    (Int64.compare with_flash expected_extra >= 0)

let test_sync_round_over_the_channel () =
  (* future-work 2 running over the same Dolev-Yao wire as attestation *)
  let s = small_session () (* trustlite_base: 64-bit clock *) in
  Session.advance_time s ~seconds:30.0;
  Alcotest.(check bool) "sync succeeds" true (Session.sync_round s);
  Alcotest.(check bool) "prover wall time tracks verifier" true
    (Int64.abs (Int64.sub (Session.prover_wall_ms s) 30_000L) < 1_000L);
  (* attestation still works afterwards *)
  (match Session.attest_round s with
  | Some Verdict.Trusted -> ()
  | Some _ | None -> Alcotest.fail "round after sync failed");
  (* replaying the recorded sync frame is rejected by the sync counter *)
  let sync_frames =
    List.filter
      (fun sent ->
        match Message.wire_of_bytes sent.Ra_net.Channel.payload with
        | Some (Message.Sync_request _) -> true
        | Some
            ( Message.Request _ | Message.Response _ | Message.Sync_response _
            | Message.Service_request _ | Message.Service_ack _
            | Message.Hs_init _ | Message.Hs_resp _ | Message.Hs_fin _
            | Message.Record _ )
        | None ->
          false)
      (Ra_net.Channel.transcript (Session.channel s))
  in
  (match sync_frames with
  | frame :: _ ->
    Session.deliver_frame_to_prover s frame.Ra_net.Channel.payload;
    let trace = Session.trace s in
    Alcotest.(check bool) "sync replay rejected" true
      (Ra_net.Trace.find trace ~substring:"sync rejected" <> [])
  | [] -> Alcotest.fail "no sync frame recorded")

let test_sync_round_without_clock () =
  let spec =
    { (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
      Architecture.clock_impl = Device.Clock_none }
  in
  let s = small_session ~spec () in
  Alcotest.(check bool) "clock-less prover cannot sync" false (Session.sync_round s)

let test_anchor_fault_on_misconfigured_rules () =
  (* pathological config: a rule that denies even Code_attest the key *)
  let spec =
    { Architecture.trustlite_base with Architecture.clock_impl = Device.Clock_none;
      policy = Freshness.Counter; protect_key = false; lock_mpu = false }
  in
  let s = small_session ~spec () in
  let d = Session.device s in
  Ra_mcu.Ea_mpu.program (Device.mpu d)
    {
      Ra_mcu.Ea_mpu.rule_name = "break-key";
      data_base = Device.key_addr d;
      data_size = Device.key_len d;
      read_by = Ra_mcu.Ea_mpu.Nobody;
      write_by = Ra_mcu.Ea_mpu.Nobody;
    };
  let req = Session.send_request s in
  (match Code_attest.handle_request_r (Session.anchor s) req with
  | Error (Verdict.Fault _) -> ()
  | Ok _ | Error _ -> Alcotest.fail "expected anchor fault")

let tests =
  [
    Alcotest.test_case "benign round trusted" `Quick test_benign_round_trusted;
    Alcotest.test_case "modified memory detected" `Quick test_modified_memory_detected;
    Alcotest.test_case "forged request rejected" `Quick test_forged_request_rejected;
    Alcotest.test_case "wrong MAC rejected" `Quick test_wrong_mac_rejected;
    Alcotest.test_case "attestation charges cycles/energy" `Quick
      test_attestation_charges_cycles_and_energy;
    Alcotest.test_case "unauthenticated prover attests bogus" `Quick
      test_unauthenticated_spec_attests_bogus;
    Alcotest.test_case "response echo checked" `Quick test_response_echo_checked;
    Alcotest.test_case "all schemes end-to-end" `Slow test_all_schemes_end_to_end;
    Alcotest.test_case "counter round-robin" `Quick test_counter_policy_round_robin;
    Alcotest.test_case "malformed frames dropped" `Quick test_malformed_frames_dropped;
    Alcotest.test_case "bit-exact frame replay rejected" `Quick
      test_bitexact_frame_replay_rejected;
    Alcotest.test_case "code update + flash attestation" `Quick
      test_code_update_with_flash_attestation;
    Alcotest.test_case "flash attestation costs more" `Quick
      test_flash_attestation_costs_more;
    Alcotest.test_case "sync round over the channel" `Quick
      test_sync_round_over_the_channel;
    Alcotest.test_case "sync round without clock" `Quick test_sync_round_without_clock;
    Alcotest.test_case "anchor fault on misconfiguration" `Quick
      test_anchor_fault_on_misconfigured_rules;
  ]
