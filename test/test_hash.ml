(* SHA-1 / SHA-256 against FIPS 180 vectors, plus streaming-equivalence
   properties. *)
open Ra_crypto

let hex = Hexutil.to_hex
let check = Alcotest.(check string)

let test_sha1_vectors () =
  check "empty" "da39a3ee5e6b4b0d3255bfef95601890afd80709" (hex (Sha1.digest ""));
  check "abc" "a9993e364706816aba3e25717850c26c9cd0d89d" (hex (Sha1.digest "abc"));
  check "two blocks" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (hex (Sha1.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"));
  check "million a" "34aa973cd4c4daa4f61eeb2bdbad27316534016f"
    (hex (Sha1.digest (String.make 1_000_000 'a')))

let test_sha1_boundary_lengths () =
  (* padding boundary cases: 55, 56, 63, 64, 65 bytes *)
  let lengths = [ 0; 1; 55; 56; 63; 64; 65; 127; 128 ] in
  List.iter
    (fun n ->
      let s = String.make n 'x' in
      let t = Sha1.init () in
      Sha1.feed t s;
      check (Printf.sprintf "len %d streaming = one-shot" n) (hex (Sha1.digest s))
        (hex (Sha1.finalize t)))
    lengths

let test_sha256_vectors () =
  check "empty" "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    (hex (Sha256.digest ""));
  check "abc" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (Sha256.digest "abc"));
  check "two blocks" "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    (hex (Sha256.digest "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))

let test_digest_sizes () =
  Alcotest.(check int) "sha1 size" 20 (String.length (Sha1.digest "x"));
  Alcotest.(check int) "sha256 size" 32 (String.length (Sha256.digest "x"));
  Alcotest.(check int) "sha1 block" 64 Sha1.block_size;
  Alcotest.(check int) "sha256 block" 64 Sha256.block_size

let qcheck_sha1_streaming =
  QCheck.Test.make ~name:"sha1: arbitrary split streaming = one-shot" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 300)) (int_range 0 300))
    (fun (s, cut) ->
      let cut = min cut (String.length s) in
      let t = Sha1.init () in
      Sha1.feed t (String.sub s 0 cut);
      Sha1.feed t (String.sub s cut (String.length s - cut));
      Sha1.finalize t = Sha1.digest s)

let qcheck_sha256_streaming =
  QCheck.Test.make ~name:"sha256: arbitrary split streaming = one-shot" ~count:100
    QCheck.(pair (string_of_size Gen.(0 -- 300)) (int_range 0 300))
    (fun (s, cut) ->
      let cut = min cut (String.length s) in
      let t = Sha256.init () in
      Sha256.feed t (String.sub s 0 cut);
      Sha256.feed t (String.sub s cut (String.length s - cut));
      Sha256.finalize t = Sha256.digest s)

let test_copy_independence () =
  (* forking a midstate must leave both contexts correct and independent *)
  let t = Sha1.init () in
  Sha1.feed t "abcdbcdecdefdefgefghfghighijhijk";
  let t' = Sha1.copy t in
  Sha1.feed t "ijkljklmklmnlmnomnopnopq";
  Sha1.feed t' "ijkljklmklmnlmnomnopnopq";
  check "sha1 copy: original" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (hex (Sha1.finalize t));
  check "sha1 copy: fork" "84983e441c3bd26ebaae4aa1f95129e5e54670f1"
    (hex (Sha1.finalize t'));
  let u = Sha256.init () in
  Sha256.feed u "ab";
  let u' = Sha256.copy u in
  Sha256.feed u' "c";
  check "sha256 fork diverges from original" "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    (hex (Sha256.finalize u'));
  check "sha256 original unaffected by fork"
    (hex (Sha256.digest "ab"))
    (hex (Sha256.finalize u))

let qcheck_feed_bytes_window =
  QCheck.Test.make ~name:"sha1/sha256: feed_bytes window = digest of sub" ~count:100
    QCheck.(triple (string_of_size Gen.(0 -- 300)) (int_range 0 300) (int_range 0 300))
    (fun (s, a, b) ->
      let pos = min a (String.length s) in
      let len = min b (String.length s - pos) in
      let sub = String.sub s pos len in
      let by = Bytes.of_string s in
      let t1 = Sha1.init () in
      Sha1.feed_bytes t1 by ~pos ~len;
      let t256 = Sha256.init () in
      Sha256.feed_bytes t256 by ~pos ~len;
      Sha1.finalize t1 = Sha1.digest sub && Sha256.finalize t256 = Sha256.digest sub)

let qcheck_digest_bytes =
  QCheck.Test.make ~name:"digest_bytes = digest" ~count:100
    QCheck.(string_of_size Gen.(0 -- 300))
    (fun s ->
      Sha1.digest_bytes (Bytes.of_string s) = Sha1.digest s
      && Sha256.digest_bytes (Bytes.of_string s) = Sha256.digest s)

let qcheck_sha1_distinct =
  QCheck.Test.make ~name:"sha1: flipping a byte changes the digest" ~count:100
    QCheck.(string_of_size Gen.(1 -- 100))
    (fun s ->
      let b = Bytes.of_string s in
      Bytes.set b 0 (Char.chr (Char.code (Bytes.get b 0) lxor 1));
      Sha1.digest (Bytes.to_string b) <> Sha1.digest s)

let tests =
  [
    Alcotest.test_case "sha1 FIPS vectors" `Quick test_sha1_vectors;
    Alcotest.test_case "sha1 padding boundaries" `Quick test_sha1_boundary_lengths;
    Alcotest.test_case "sha256 FIPS vectors" `Quick test_sha256_vectors;
    Alcotest.test_case "digest sizes" `Quick test_digest_sizes;
    Alcotest.test_case "copy independence" `Quick test_copy_independence;
    QCheck_alcotest.to_alcotest qcheck_feed_bytes_window;
    QCheck_alcotest.to_alcotest qcheck_digest_bytes;
    QCheck_alcotest.to_alcotest qcheck_sha1_streaming;
    QCheck_alcotest.to_alcotest qcheck_sha256_streaming;
    QCheck_alcotest.to_alcotest qcheck_sha1_distinct;
  ]
