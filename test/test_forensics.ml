open Ra_core
module F = Ra_obs.Forensics

(* ---- capsule JSON round-trip ------------------------------------------ *)

let sample_capsule =
  {
    F.cap_kind = F.Failure;
    cap_member = 3;
    cap_name = "dev-3";
    cap_sweep_seed = 0xC4A05L;
    cap_losses = [ 0.0; 0.25 ];
    cap_policies =
      [
        ( "default",
          {
            F.cp_max_attempts = 8;
            cp_base_timeout_s = 0.5;
            cp_multiplier = 2.0;
            cp_max_timeout_s = 30.0;
            cp_jitter = 0.1;
          } );
      ];
    cap_rounds_per_member = 10;
    cap_cell = 1;
    cap_loss = 0.25;
    cap_policy = "default";
    cap_round = 7;
    cap_workload = "attest";
    cap_imp_seed = -123456789L;
    cap_prior_sweeps = 0;
    cap_started_at = 42.5;
    cap_elapsed_s = 1.75;
    cap_attempts = 3;
    cap_verdict = Verdict.to_json Verdict.Trusted;
    cap_reason = "trusted";
    cap_trace_id = Some 17;
    cap_phase = Some "mac";
    cap_wire_digest = "deadbeef";
    cap_config = "cfg";
  }

let test_json_roundtrip_fixed () =
  let j = F.capsule_to_json sample_capsule in
  (match F.capsule_of_json j with
  | Some c -> Alcotest.(check bool) "structural round-trip" true (c = sample_capsule)
  | None -> Alcotest.fail "capsule_of_json rejected its own encoding");
  (* through the actual string form too (floats print as %.17g) *)
  match Ra_obs.Json.of_string (Ra_obs.Json.to_string j) with
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)
  | Ok j' -> (
    match F.capsule_of_json j' with
    | Some c -> Alcotest.(check bool) "string round-trip" true (c = sample_capsule)
    | None -> Alcotest.fail "reparsed JSON rejected")

(* hostile member names (quotes, control bytes, unicode-ish), full-range
   int64 seeds, optional fields in every combination *)
let capsule_gen =
  let open QCheck.Gen in
  let str = string_size ~gen:(int_range 0 255 >|= Char.chr) (int_range 0 12) in
  let i64 = map Int64.of_int int in
  let fl = float_range (-1e6) 1e6 in
  let policy =
    map2
      (fun name (a, b, c) ->
        ( name,
          {
            F.cp_max_attempts = a;
            cp_base_timeout_s = b;
            cp_multiplier = c;
            cp_max_timeout_s = b +. c;
            cp_jitter = 0.5;
          } ))
      str
      (triple (int_range 1 16) fl fl)
  in
  let kind = oneofl [ F.Failure; F.Slowest; F.Deadline_miss ] in
  map
    (fun ((kind, member, name, seed), (losses, policies, cell, round), (f1, f2), (attempts, trace, phase, digest)) ->
      {
        F.cap_kind = kind;
        cap_member = member;
        cap_name = name;
        cap_sweep_seed = seed;
        cap_losses = losses;
        cap_policies = policies;
        cap_rounds_per_member = round + 1;
        cap_cell = cell;
        cap_loss = (match losses with l :: _ -> l | [] -> 0.0);
        cap_policy = (match policies with (n, _) :: _ -> n | [] -> "p");
        cap_round = round;
        cap_workload = (if round mod 2 = 0 then "attest" else Printf.sprintf "session:%d" round);
        cap_imp_seed = Int64.mul seed 0x9E3779B97F4A7C15L;
        cap_prior_sweeps = 0;
        cap_started_at = f1;
        cap_elapsed_s = f2;
        cap_attempts = attempts;
        cap_verdict = Ra_obs.Json.Str name;
        cap_reason = "timed_out";
        cap_trace_id = trace;
        cap_phase = phase;
        cap_wire_digest = digest;
        cap_config = "cfg";
      })
    (quad
       (quad kind (int_range 0 10000) str i64)
       (quad (list_size (int_range 0 4) fl) (list_size (int_range 0 3) policy)
          (int_range 0 20) (int_range 1 20))
       (pair fl fl)
       (quad (int_range 1 64) (opt (int_range 0 1000)) (opt str) str))

let qcheck_json_roundtrip =
  QCheck.Test.make ~count:300 ~name:"capsule JSON round-trips (hostile strings)"
    (QCheck.make capsule_gen ~print:(fun c ->
         Ra_obs.Json.to_string (F.capsule_to_json c)))
    (fun c ->
      match
        Ra_obs.Json.of_string (Ra_obs.Json.to_string (F.capsule_to_json c))
      with
      | Error _ -> false
      | Ok j -> F.capsule_of_json j = Some c)

(* ---- capture determinism and replay byte-identity --------------------- *)

let losses = [ 0.0; 0.4 ]

let policies =
  [ ("none", Retry.no_retry); ("default", { Retry.default with jitter = 0.1 }) ]

let capturing_fleet () =
  let names = List.init 6 (fun i -> Printf.sprintf "dev-%d" i) in
  let fleet = Fleet.create ~ram_size:1024 ~names () in
  ignore (Fleet.enable_forensics fleet);
  Fleet.enable_tracing fleet;
  Fleet.enable_profiling fleet;
  fleet

let sweep ?engine fleet =
  ignore
    (Fleet.chaos_sweep ~seed:31L ~rounds_per_member:4 ?engine ~losses ~policies
       fleet)

let test_capture_stream_engine_invariant () =
  let stream engine =
    let fleet = capturing_fleet () in
    sweep ~engine fleet;
    F.capsules_jsonl (Fleet.capsules fleet)
  in
  let reference = stream `Seq in
  Alcotest.(check bool) "captured something" true (String.length reference > 0);
  List.iter
    (fun (label, engine) ->
      Alcotest.(check string)
        (Printf.sprintf "capsule stream identical under %s" label)
        reference (stream engine))
    [ ("events", `Events); ("shards 1", `Shards 1); ("shards 2", `Shards 2);
      ("shards 4", `Shards 4) ]

let test_capture_has_failures_and_slowest () =
  let fleet = capturing_fleet () in
  sweep fleet;
  let caps = Fleet.capsules fleet in
  let kinds k = List.filter (fun c -> c.F.cap_kind = k) caps in
  Alcotest.(check bool) "some failures captured" true (kinds F.Failure <> []);
  (* one slowest capsule per cell *)
  Alcotest.(check int) "one slowest per cell"
    (List.length losses * List.length policies)
    (List.length (kinds F.Slowest));
  List.iter
    (fun c ->
      Alcotest.(check bool) "trace id present (tracing was on)" true
        (c.F.cap_trace_id <> None);
      Alcotest.(check bool) "dominant phase attributed" true
        (c.F.cap_phase <> None);
      Alcotest.(check bool) "wire digest non-empty" true
        (String.length c.F.cap_wire_digest = 40))
    caps

let test_replay_byte_identical () =
  let fleet = capturing_fleet () in
  sweep fleet;
  let caps = Fleet.capsules fleet in
  Alcotest.(check bool) "captured" true (caps <> []);
  List.iter
    (fun cap ->
      match Fleet.replay_capsule fleet cap with
      | Error e -> Alcotest.fail ("replay refused: " ^ e)
      | Ok rp ->
        Alcotest.(check string)
          (Printf.sprintf "wire digest matches (%s %s round %d)"
             (F.kind_label cap.F.cap_kind) cap.F.cap_name cap.F.cap_round)
          cap.F.cap_wire_digest rp.Fleet.rp_digest;
        Alcotest.(check bool) "verdict+attempts+times match" true
          rp.Fleet.rp_match;
        Alcotest.(check bool) "replay carries a trace" true
          (rp.Fleet.rp_round <> None))
    caps

let test_replay_guards () =
  let fleet = capturing_fleet () in
  sweep fleet;
  let cap = List.hd (Fleet.capsules fleet) in
  let expect_error label cap =
    match Fleet.replay_capsule fleet cap with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail (label ^ ": expected Error")
  in
  expect_error "tampered seed" { cap with F.cap_imp_seed = 1L };
  expect_error "foreign config" { cap with F.cap_config = "bogus" };
  expect_error "pre-sweep history" { cap with F.cap_prior_sweeps = 3 };
  expect_error "cell out of range" { cap with F.cap_cell = 99 };
  expect_error "round out of range" { cap with F.cap_round = 99 };
  expect_error "deadline miss"
    (F.deadline_miss ~device:(Some "d") ~tag:1 ~arrived:0.0 ~done_:3.0
       ~verdict:(Ra_obs.Json.Str "timed_out"))

(* capture must be wire-neutral: same fingerprint with and without *)
let test_capture_wire_neutral () =
  let run forensics =
    let names = List.init 5 (fun i -> Printf.sprintf "dev-%d" i) in
    let fleet = Fleet.create ~ram_size:1024 ~names () in
    if forensics then ignore (Fleet.enable_forensics fleet);
    sweep fleet;
    Fleet.fingerprint fleet
  in
  Alcotest.(check string) "fingerprint unchanged by capture" (run false)
    (run true)

(* ---- triage ----------------------------------------------------------- *)

let test_triage () =
  let fleet = capturing_fleet () in
  sweep fleet;
  let caps = Fleet.capsules fleet in
  let rows = F.triage caps in
  Alcotest.(check bool) "has diagnoses" true (rows <> []);
  let failures =
    List.length (List.filter (fun c -> c.F.cap_kind <> F.Slowest) caps)
  in
  Alcotest.(check int) "diagnosis counts sum to triaged capsules" failures
    (List.fold_left (fun a d -> a + d.F.dg_count) 0 rows);
  (* ranked: counts never increase *)
  let counts = List.map (fun d -> d.F.dg_count) rows in
  Alcotest.(check bool) "ranked by count" true
    (List.sort (fun a b -> compare b a) counts = counts);
  let share = List.fold_left (fun a d -> a +. d.F.dg_share_pct) 0.0 rows in
  Alcotest.(check bool) "shares sum to 100" true (Float.abs (share -. 100.0) < 1e-6);
  Alcotest.(check bool) "jsonl renders" true
    (String.length (F.diagnosis_jsonl rows) > 0);
  Alcotest.(check bool) "human report renders" true
    (String.length (F.render_diagnosis rows) > 0)

(* ---- exemplars -------------------------------------------------------- *)

let test_exemplars () =
  Ra_obs.Registry.reset Ra_obs.Registry.default;
  let fleet = capturing_fleet () in
  sweep fleet;
  let stamped = Fleet.annotate_exemplars fleet in
  Alcotest.(check bool) "stamped some exemplars" true (stamped > 0);
  let h = Ra_obs.Registry.Histogram.get "ra_chaos_round_time_ms" in
  let exs = Ra_obs.Registry.Histogram.exemplars h in
  Alcotest.(check bool) "histogram carries exemplars" true (exs <> []);
  List.iter
    (fun (_, e) ->
      Alcotest.(check bool) "exemplar links a trace" true
        (String.contains e.Ra_obs.Registry.ex_trace_id '/'))
    exs;
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
    nn = 0 || go 0
  in
  let text = Ra_obs.Export.render_prometheus Ra_obs.Registry.default in
  Alcotest.(check bool) "OpenMetrics exemplar suffix rendered" true
    (contains text "# {trace_id=");
  Ra_obs.Registry.reset Ra_obs.Registry.default

(* ---- server deadline-miss capsules ------------------------------------ *)

let test_server_deadline_capsules () =
  let sym_key = String.make 20 'k' in
  let image = String.make 64 '\x5a' in
  let cfg =
    Server.default_config
      {
        Verifier.Config.scheme = None;
        freshness_kind = Verifier.Fk_counter;
        sym_key;
        ecdsa_seed = "seed";
        time = Ra_net.Simtime.create ();
        reference_image = image;
      }
  in
  (* starve the single verification unit so the queue blows the deadline *)
  let cfg = { cfg with Server.sc_deadline_s = 0.001; sc_block_s = 0.01 } in
  let ring = F.create () in
  let traffic =
    { Server.Load.default_traffic with tr_devices = 8; tr_rate = 4.0;
      tr_horizon_s = 5.0 }
  in
  let report, _ = Server.Load.run ~forensics:ring cfg traffic in
  ignore report;
  let caps = F.capsules ring in
  Alcotest.(check bool) "deadline misses captured" true (caps <> []);
  List.iter
    (fun c ->
      Alcotest.(check bool) "kind is deadline_miss" true
        (c.F.cap_kind = F.Deadline_miss);
      Alcotest.(check string) "impairment signature" "deadline"
        (F.signature_of c).F.sig_impairment)
    caps;
  (* triage folds server capsules in with fleet failures *)
  Alcotest.(check bool) "triage accepts server capsules" true
    (F.triage caps <> [])

(* ---- dominant phase --------------------------------------------------- *)

let test_dominant_phase () =
  let s ?(trace = 1) phase cycles =
    {
      Ra_obs.Profiler.ps_at = 0.0;
      ps_trace_id = Some trace;
      ps_device = "d";
      ps_phase = phase;
      ps_cycles = Int64.of_int cycles;
      ps_nj = 0.0;
    }
  in
  Alcotest.(check (option string)) "max cycles wins" (Some "mac")
    (F.dominant_phase [ s "auth" 5; s "mac" 10; s "mac" 6; s "auth" 3 ] ~trace_id:1);
  Alcotest.(check (option string)) "tie breaks lexicographically" (Some "auth")
    (F.dominant_phase [ s "mac" 5; s "auth" 5 ] ~trace_id:1);
  Alcotest.(check (option string)) "foreign trace ignored" None
    (F.dominant_phase [ s ~trace:2 "mac" 5 ] ~trace_id:1)

let tests =
  [
    Alcotest.test_case "capsule JSON round-trip (fixed)" `Quick
      test_json_roundtrip_fixed;
    QCheck_alcotest.to_alcotest qcheck_json_roundtrip;
    Alcotest.test_case "capsule stream invariant across engines/shards" `Slow
      test_capture_stream_engine_invariant;
    Alcotest.test_case "failures and slowest retained" `Quick
      test_capture_has_failures_and_slowest;
    Alcotest.test_case "replay is byte-identical" `Slow test_replay_byte_identical;
    Alcotest.test_case "replay guards reject bad capsules" `Quick
      test_replay_guards;
    Alcotest.test_case "capture is wire-neutral" `Quick test_capture_wire_neutral;
    Alcotest.test_case "triage ranks signatures" `Quick test_triage;
    Alcotest.test_case "exemplars reach breached buckets" `Quick test_exemplars;
    Alcotest.test_case "server deadline-miss capsules" `Quick
      test_server_deadline_capsules;
    Alcotest.test_case "dominant phase attribution" `Quick test_dominant_phase;
  ]
