open Ra_core
module Json = Ra_obs.Json

(* ---- generators ------------------------------------------------------- *)

let gen_int64 = QCheck.Gen.(map Int64.of_int int)
let gen_pos_int64 = QCheck.Gen.(map (fun n -> Int64.of_int (abs n)) int)

let gen_freshness_reject =
  QCheck.Gen.(
    oneof
      [
        return Verdict.Missing_field;
        return Verdict.Wrong_field;
        return Verdict.Replayed_nonce;
        map2
          (fun got stored -> Verdict.Stale_counter { got; stored })
          gen_int64 gen_int64;
        map2
          (fun got last -> Verdict.Stale_or_reordered_timestamp { got; last })
          gen_int64 gen_int64;
        map3
          (fun got now window -> Verdict.Delayed_timestamp { got; now; window })
          gen_int64 gen_int64 gen_pos_int64;
        map3
          (fun got now window -> Verdict.Future_timestamp { got; now; window })
          gen_int64 gen_int64 gen_pos_int64;
      ])

let gen_verdict =
  QCheck.Gen.(
    oneof
      [
        return Verdict.Trusted;
        return Verdict.Untrusted_state;
        return Verdict.Invalid_response;
        return Verdict.Bad_auth;
        map (fun r -> Verdict.Not_fresh r) gen_freshness_reject;
        map2
          (fun fault_addr fault_code -> Verdict.Fault { fault_addr; fault_code })
          small_nat (string_size ~gen:printable (int_range 0 20));
        map2
          (fun attempts waited_s -> Verdict.Timed_out { attempts; waited_s })
          (int_range 1 64)
          (map (fun f -> Float.abs f) pfloat);
      ])

let arb_verdict =
  QCheck.make gen_verdict ~print:(Format.asprintf "%a" Verdict.pp)

(* ---- JSON round-trip -------------------------------------------------- *)

let prop_json_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"Verdict.of_json (to_json v) = Some v"
    arb_verdict
    (fun v -> Verdict.of_json (Verdict.to_json v) = Some v)

let prop_json_string_roundtrip =
  (* the full sink path: value -> Json -> string -> Json -> value, so the
     encoding survives the obs layer's actual serializer (int64s as
     decimal strings, floats at %.17g) *)
  QCheck.Test.make ~count:1000
    ~name:"Verdict survives Json.to_string/of_string" arb_verdict
    (fun v ->
      match Json.of_string (Json.to_string (Verdict.to_json v)) with
      | Ok j -> Verdict.of_json j = Some v
      | Error _ -> false)

let test_of_json_garbage () =
  let none j = Alcotest.(check bool) "rejected" true (Verdict.of_json j = None) in
  none Json.Null;
  none (Json.Str "trusted");
  none (Json.Obj [ ("verdict", Json.Str "no_such_verdict") ]);
  none (Json.Obj [ ("verdict", Json.Str "fault") ]);
  none
    (Json.Obj
       [
         ("verdict", Json.Str "not_fresh");
         ("reject", Json.Obj [ ("kind", Json.Str "stale_counter") ]);
       ]);
  none
    (Json.Obj
       [
         ("verdict", Json.Str "timed_out");
         ("attempts", Json.Str "three");
         ("waited_s", Json.Num 1.0);
       ])

(* ---- labels and acceptance ------------------------------------------- *)

let prop_accepted_iff_trusted =
  QCheck.Test.make ~count:500 ~name:"accepted <=> Trusted" arb_verdict
    (fun v -> Verdict.accepted v = (v = Verdict.Trusted))

let test_labels_stable () =
  let check v expect = Alcotest.(check string) expect expect (Verdict.label v) in
  check Verdict.Trusted "trusted";
  check Verdict.Untrusted_state "untrusted_state";
  check Verdict.Invalid_response "invalid_response";
  check Verdict.Bad_auth "bad_auth";
  check (Verdict.Not_fresh Verdict.Replayed_nonce) "not_fresh";
  check (Verdict.Fault { fault_addr = 0; fault_code = "x" }) "fault";
  check (Verdict.Timed_out { attempts = 1; waited_s = 0.5 }) "timed_out"

let test_freshness_alias () =
  (* Freshness.reject is an equation for Verdict.freshness_reject: the
     same value must flow through both modules' labels and printers *)
  let r = Freshness.Stale_counter { got = 3L; stored = 9L } in
  Alcotest.(check string) "label stable" "stale_counter"
    (Verdict.freshness_label r);
  Alcotest.(check string) "printers agree"
    (Format.asprintf "%a" Freshness.pp_reject r)
    (Format.asprintf "%a" Verdict.pp_freshness_reject r)

let test_handler_conversions () =
  (* the _r variants must agree with the legacy typed errors *)
  let session = Session.create ~ram_size:1024 () in
  Session.advance_time session ~seconds:1.0;
  let req = Session.send_request session in
  ignore (Session.deliver_next_to_prover session);
  ignore (Session.deliver_next_to_verifier session);
  (match Session.verdicts session with
  | (_, v) :: _ ->
    Alcotest.(check bool) "verifier conversion accepted" true (Verdict.accepted v)
  | [] -> Alcotest.fail "expected a verdict");
  (* replaying the same request must surface as Not_fresh through the _r
     anchor API *)
  match Code_attest.handle_request_r (Session.anchor session) req with
  | Error (Verdict.Not_fresh _) -> ()
  | Error v -> Alcotest.failf "expected Not_fresh, got %s" (Verdict.label v)
  | Ok _ -> Alcotest.fail "replayed request accepted"

let tests =
  [
    QCheck_alcotest.to_alcotest prop_json_roundtrip;
    QCheck_alcotest.to_alcotest prop_json_string_roundtrip;
    Alcotest.test_case "of_json rejects garbage" `Quick test_of_json_garbage;
    QCheck_alcotest.to_alcotest prop_accepted_iff_trusted;
    Alcotest.test_case "labels stable" `Quick test_labels_stable;
    Alcotest.test_case "freshness alias" `Quick test_freshness_alias;
    Alcotest.test_case "handler conversions" `Quick test_handler_conversions;
  ]
