open Ra_core
module Device = Ra_mcu.Device
module Channel = Ra_net.Channel

let spec_counter =
  {
    (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
    Architecture.clock_impl = Device.Clock_none;
  }

let make () = Session.create ~spec:spec_counter ~ram_size:2048 ()

let test_multiple_outstanding_requests () =
  let s = make () in
  let _r1 = Session.send_request s in
  let _r2 = Session.send_request s in
  let _r3 = Session.send_request s in
  (* deliver all three to the prover in order, then drain responses *)
  Alcotest.(check bool) "d1" true (Session.deliver_next_to_prover s);
  Alcotest.(check bool) "d2" true (Session.deliver_next_to_prover s);
  Alcotest.(check bool) "d3" true (Session.deliver_next_to_prover s);
  let rec drain n = if Session.deliver_next_to_verifier s then drain (n + 1) else n in
  Alcotest.(check int) "three responses" 3 (drain 0);
  Alcotest.(check int) "three verdicts" 3 (List.length (Session.verdicts s));
  List.iter
    (fun (_, v) -> Alcotest.(check bool) "trusted" true (v = Verdict.Trusted))
    (Session.verdicts s)

let test_verdict_timeline_monotone () =
  let s = make () in
  Session.advance_time s ~seconds:1.0;
  let _ = Session.attest_round s in
  Session.advance_time s ~seconds:5.0;
  let _ = Session.attest_round s in
  (match Session.verdicts s with
  | [ (t1, _); (t2, _) ] ->
    Alcotest.(check bool) "chronological" true (t1 < t2);
    (* each round's timestamp includes the prover's ~31 ms of work *)
    Alcotest.(check bool) "work time visible" true (t1 > 1.0)
  | l -> Alcotest.failf "expected 2 verdicts, got %d" (List.length l))

let test_trace_records_protocol_events () =
  let s = make () in
  Session.advance_time s ~seconds:1.0;
  let _ = Session.attest_round s in
  let trace = Session.trace s in
  List.iter
    (fun needle ->
      Alcotest.(check bool) needle true (Ra_net.Trace.find trace ~substring:needle <> []))
    [ "verifier sent a message"; "prover: attested"; "verifier: verdict trusted" ]

let test_response_to_stale_challenge_ignored () =
  let s = make () in
  let _ = Session.attest_round s in
  (* re-deliver the prover's recorded response: its challenge is no
     longer pending, so no second verdict appears *)
  let response_frames =
    List.filter
      (fun sent -> sent.Channel.src = Channel.Prover_side)
      (Channel.transcript (Session.channel s))
  in
  (match response_frames with
  | frame :: _ ->
    Channel.deliver (Session.channel s) ~dst:Channel.Verifier_side frame.Channel.payload
  | [] -> Alcotest.fail "no response recorded");
  Alcotest.(check int) "still one verdict" 1 (List.length (Session.verdicts s))

let test_advance_time_moves_both_clocks () =
  let s = Session.create ~ram_size:2048 () (* trustlite_base: 64-bit clock *) in
  Session.advance_time s ~seconds:12.5;
  Alcotest.(check (float 0.01)) "sim time" 12.5 (Ra_net.Simtime.now (Session.time s));
  (match Device.clock (Session.device s) with
  | Some clock ->
    Alcotest.(check (float 0.01)) "device clock" 12.5 (Ra_mcu.Clock.seconds clock)
  | None -> Alcotest.fail "expected clock")

let test_service_round_over_channel () =
  let s = make () in
  Alcotest.(check bool) "ping acknowledged" true (Session.service_round s Service.Ping);
  Alcotest.(check bool) "erase acknowledged" true
    (Session.service_round s Service.Secure_erase);
  (* the erase really happened: attested RAM is zero and the next
     attestation flags the changed state *)
  let device = Session.device s in
  Alcotest.(check string) "RAM wiped" (String.make 64 '\x00')
    (Ra_mcu.Memory.read_bytes (Device.memory device) (Device.attested_base device) 64);
  (match Session.attest_round s with
  | Some Verdict.Untrusted_state -> ()
  | Some v -> Alcotest.failf "expected untrusted after erase, got %a" Verdict.pp v
  | None -> Alcotest.fail "no response");
  (* replaying the recorded erase frame bounces off the service counter *)
  let erase_frames =
    List.filter
      (fun sent ->
        match Message.wire_of_bytes sent.Channel.payload with
        | Some (Message.Service_request { command_name = "secure-erase"; _ }) -> true
        | Some _ | None -> false)
      (Channel.transcript (Session.channel s))
  in
  (match erase_frames with
  | frame :: _ ->
    Session.deliver_frame_to_prover s frame.Channel.payload;
    Alcotest.(check bool) "service replay rejected" true
      (Ra_net.Trace.find (Session.trace s) ~substring:"service rejected" <> [])
  | [] -> Alcotest.fail "no erase frame recorded")

let test_custom_sym_key () =
  let s = Session.create ~spec:spec_counter ~sym_key:(String.make 20 'z') ~ram_size:2048 () in
  match Session.attest_round s with
  | Some Verdict.Trusted -> ()
  | Some v -> Alcotest.failf "custom key round: %a" Verdict.pp v
  | None -> Alcotest.fail "no response with custom key"

let tests =
  [
    Alcotest.test_case "multiple outstanding requests" `Quick
      test_multiple_outstanding_requests;
    Alcotest.test_case "verdict timeline" `Quick test_verdict_timeline_monotone;
    Alcotest.test_case "trace records protocol events" `Quick
      test_trace_records_protocol_events;
    Alcotest.test_case "stale response ignored" `Quick
      test_response_to_stale_challenge_ignored;
    Alcotest.test_case "advance_time moves both clocks" `Quick
      test_advance_time_moves_both_clocks;
    Alcotest.test_case "service round over the channel" `Quick
      test_service_round_over_channel;
    Alcotest.test_case "custom symmetric key" `Quick test_custom_sym_key;
  ]
