(* The interpreted trust anchor: the attestation report is computed by
   in-ISA SHA-1, every attested byte crossing the EA-MPU with the PC in
   rom_attest — and the unmodified Verifier accepts it. *)
open Ra_core
module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Cpu = Ra_mcu.Cpu
module Ea_mpu = Ra_mcu.Ea_mpu
module Timing = Ra_mcu.Timing
module Simtime = Ra_net.Simtime

let sym_key = "K_attest_0123456789." (* 20 bytes *)

let make ?(protect = true) () =
  let blob = Auth.prover_key_blob ~sym_key ~public:None in
  let device =
    Device.create ~ram_size:2048
      ~rom_images:[ (Device.region_attest, Isa_anchor.rom_image ()) ]
      ~key:blob ()
  in
  Device.fill_ram_deterministic device ~seed:11L;
  if protect then begin
    Ea_mpu.program (Device.mpu device) (Device.rule_protect_key device);
    Ea_mpu.program (Device.mpu device) (Device.rule_protect_counter device);
    (* the anchor's scratch is its private working memory *)
    Ea_mpu.program (Device.mpu device)
      {
        Ea_mpu.rule_name = "anchor_scratch";
        data_base = Device.anchor_scratch_addr device;
        data_size = Ra_isa.Sha1_asm.scratch_bytes;
        read_by = Ea_mpu.Code_in [ Device.region_attest ];
        write_by = Ea_mpu.Code_in [ Device.region_attest ];
      };
    Ea_mpu.lock (Device.mpu device)
  end;
  let anchor =
    Isa_anchor.install device ~scheme:(Some Timing.Auth_hmac_sha1)
      ~policy:Freshness.Counter
  in
  let verifier =
    match
      Verifier.of_config
        (Verifier.Config.v ~scheme:Timing.Auth_hmac_sha1
           ~freshness_kind:Verifier.Fk_counter ~sym_key ~time:(Simtime.create ())
           ~reference_image:(Isa_anchor.measure_memory anchor) ())
    with
    | Ok v -> v
    | Error msg -> Alcotest.fail msg
  in
  (device, anchor, verifier)

let test_end_to_end_trusted () =
  let _, anchor, verifier = make () in
  let req = Verifier.make_request verifier in
  match Isa_anchor.handle_request anchor req with
  | Ok resp ->
    Alcotest.(check bool) "verifier accepts the interpreted MAC" true
      (Verifier.check_response_r verifier ~request:req resp = Verdict.Trusted)
  | Error e -> Alcotest.failf "rejected: %a" Code_attest.pp_reject e

let test_report_equals_host_crypto () =
  let _, anchor, verifier = make () in
  let req = Verifier.make_request verifier in
  match Isa_anchor.handle_request anchor req with
  | Ok resp ->
    let expected =
      Auth.response_report ~sym_key
        ~body:(Message.response_body resp)
        ~memory_image:(Isa_anchor.measure_memory anchor)
    in
    Alcotest.(check string) "bit-identical to Hmac.mac"
      (Ra_crypto.Hexutil.to_hex expected)
      (Ra_crypto.Hexutil.to_hex resp.Message.report)
  | Error e -> Alcotest.failf "rejected: %a" Code_attest.pp_reject e

let test_detects_infection () =
  let device, anchor, verifier = make () in
  Memory.write_bytes (Device.memory device) (Device.attested_base device) "IMPLANT";
  let req = Verifier.make_request verifier in
  match Isa_anchor.handle_request anchor req with
  | Ok resp ->
    Alcotest.(check bool) "untrusted" true
      (Verifier.check_response_r verifier ~request:req resp = Verdict.Untrusted_state)
  | Error e -> Alcotest.failf "rejected: %a" Code_attest.pp_reject e

let test_freshness_enforced () =
  let _, anchor, verifier = make () in
  let req = Verifier.make_request verifier in
  (match Isa_anchor.handle_request anchor req with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "first rejected: %a" Code_attest.pp_reject e);
  match Isa_anchor.handle_request anchor req with
  | Error (Code_attest.Not_fresh _) -> ()
  | Ok _ -> Alcotest.fail "replay attested"
  | Error e -> Alcotest.failf "wrong reject: %a" Code_attest.pp_reject e

let test_bad_auth_rejected () =
  let _, anchor, _ = make () in
  let req =
    { Message.challenge = "evil"; freshness = Message.F_counter 1L; tag = Message.Tag_none }
  in
  match Isa_anchor.handle_request anchor req with
  | Error Code_attest.Bad_auth -> ()
  | Ok _ -> Alcotest.fail "unauthenticated request attested"
  | Error e -> Alcotest.failf "wrong reject: %a" Code_attest.pp_reject e

let test_interpreted_cost_visible () =
  let device, anchor, verifier = make () in
  let req = Verifier.make_request verifier in
  let before = Cpu.work_cycles (Device.cpu device) in
  (match Isa_anchor.handle_request anchor req with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "rejected: %a" Code_attest.pp_reject e);
  let spent = Int64.sub (Cpu.work_cycles (Device.cpu device)) before in
  (* ~2 KB + body over interpreted SHA-1 at ~8.2k cycles/block: the
     measurement dominates and is 100% real executed work *)
  Alcotest.(check bool) "mac cycles recorded" true
    (Int64.compare (Isa_anchor.last_mac_cycles anchor) 200_000L > 0);
  Alcotest.(check bool) "work charged to the device" true
    (Int64.compare spent (Isa_anchor.last_mac_cycles anchor) >= 0)

let test_scratch_protected_from_malware () =
  let device, _, _ = make () in
  (try
     ignore (Cpu.load_byte (Device.cpu device) (Device.anchor_scratch_addr device));
     Alcotest.fail "scratch read by untrusted code should fault"
   with Cpu.Protection_fault _ -> ())

let test_install_requires_rom_image () =
  let blob = Auth.prover_key_blob ~sym_key ~public:None in
  let bare = Device.create ~ram_size:2048 ~key:blob () in
  Alcotest.check_raises "missing routine"
    (Invalid_argument
       "Isa_anchor.install: rom_attest does not hold the SHA-1 routine (pass rom_images \
        at Device.create)") (fun () ->
      ignore
        (Isa_anchor.install bare ~scheme:(Some Timing.Auth_hmac_sha1)
           ~policy:Freshness.Counter))

let tests =
  [
    Alcotest.test_case "end-to-end trusted" `Quick test_end_to_end_trusted;
    Alcotest.test_case "report = host crypto" `Quick test_report_equals_host_crypto;
    Alcotest.test_case "detects infection" `Quick test_detects_infection;
    Alcotest.test_case "freshness enforced" `Quick test_freshness_enforced;
    Alcotest.test_case "bad auth rejected" `Quick test_bad_auth_rejected;
    Alcotest.test_case "interpreted cost visible" `Quick test_interpreted_cost_visible;
    Alcotest.test_case "scratch protected" `Quick test_scratch_protected_from_malware;
    Alcotest.test_case "install requires ROM image" `Quick test_install_requires_rom_image;
  ]
