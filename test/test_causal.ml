(* End-to-end causal tracing: session rounds under impairment, wire
   neutrality (tracing must not change transcripts), the fleet SLO
   watchdog and the flight-recorder bound. *)

module Session = Ra_core.Session
module Fleet = Ra_core.Fleet
module Retry = Ra_core.Retry
module Verdict = Ra_core.Verdict
module Impairment = Ra_net.Impairment
module Trace = Ra_obs.Trace
module Slo = Ra_obs.Slo

let events_named name rd =
  List.filter (fun e -> e.Trace.ev_name = name) rd.Trace.rd_events

let well_formed rd =
  let ids = List.map (fun e -> e.Trace.ev_id) rd.Trace.rd_events in
  List.length ids = List.length (List.sort_uniq compare ids)
  && List.for_all
       (fun e ->
         match e.Trace.ev_parent with
         | None -> e.Trace.ev_id = 0
         | Some p -> List.mem p ids)
       rd.Trace.rd_events

let test_timeout_round_traced () =
  let s = Session.create ~ram_size:4096 () in
  Session.advance_time s ~seconds:1.0;
  let tr = Session.enable_tracing s in
  Session.set_impairment s
    (Some
       (Impairment.create ~to_prover:(Impairment.lossy 1.0)
          ~to_verifier:(Impairment.lossy 1.0) ~seed:7L ()));
  let r = Session.attest_round_r ~policy:Retry.impatient s in
  (match r.Session.r_verdict with
  | Verdict.Timed_out _ -> ()
  | v -> Alcotest.failf "expected Timed_out, got %s" (Verdict.label v));
  match Trace.rounds tr with
  | [ rd ] ->
    Alcotest.(check bool) "well-formed tree" true (well_formed rd);
    Alcotest.(check string) "verdict recorded" (Verdict.label r.Session.r_verdict)
      rd.Trace.rd_verdict;
    Alcotest.(check int) "attempts recorded" r.Session.r_attempts
      rd.Trace.rd_attempts;
    Alcotest.(check int) "one attempt span per transmission"
      r.Session.r_attempts
      (List.length (events_named "retry.attempt" rd));
    Alcotest.(check int) "one backoff wait per timed-out attempt"
      r.Session.r_attempts
      (List.length (events_named "retry.backoff" rd));
    Alcotest.(check bool) "impairment drops linked" true
      (events_named "net.drop" rd <> []);
    Alcotest.(check int) "exactly one verdict instant" 1
      (List.length (events_named "verdict" rd))
  | rds -> Alcotest.failf "expected one sealed round, got %d" (List.length rds)

let test_benign_round_traced () =
  let s = Session.create ~ram_size:4096 () in
  Session.advance_time s ~seconds:1.0;
  let tr = Session.enable_tracing ~device:"unit" s in
  let r = Session.attest_round_r s in
  Alcotest.(check string) "trusted" "trusted" (Verdict.label r.Session.r_verdict);
  match Trace.rounds tr with
  | [ rd ] ->
    Alcotest.(check string) "device name" "unit" rd.Trace.rd_device;
    Alcotest.(check int) "single attempt" 1 rd.Trace.rd_attempts;
    List.iter
      (fun name ->
        Alcotest.(check bool) (name ^ " present") true (events_named name rd <> []))
      [ "retry.attempt"; "net.tx"; "net.deliver"; "prover.attest";
        "verifier.check"; "verdict" ];
    Alcotest.(check (list (Alcotest.of_pp Fmt.nop))) "no backoff" []
      (events_named "retry.backoff" rd);
    (* the prover's CPU-clocked sub-steps are mirrored in as instants *)
    Alcotest.(check bool) "cpu_ms mirror present" true
      (List.exists
         (fun e -> List.mem_assoc "cpu_ms" e.Trace.ev_labels)
         rd.Trace.rd_events)
  | rds -> Alcotest.failf "expected one sealed round, got %d" (List.length rds)

(* Tracing must be invisible on the wire: the same lossy schedule with
   and without a tracer attached produces identical rounds, verdicts and
   prover clocks. *)
let test_wire_neutrality () =
  let run ~traced =
    let s = Session.create ~ram_size:4096 () in
    Session.advance_time s ~seconds:1.0;
    if traced then ignore (Session.enable_tracing s);
    Session.set_impairment s
      (Some
         (Impairment.create ~to_prover:(Impairment.lossy 0.3)
            ~to_verifier:(Impairment.lossy 0.3) ~seed:42L ()));
    let rounds =
      List.init 5 (fun _ ->
          let r = Session.attest_round_r s in
          (Verdict.label r.Session.r_verdict, r.Session.r_attempts,
           r.Session.r_elapsed_s))
    in
    (rounds, Session.prover_wall_ms s, List.length (Session.verdicts s))
  in
  let plain = run ~traced:false in
  let traced = run ~traced:true in
  Alcotest.(check bool) "identical transcripts" true (plain = traced)

let test_recorder_bound_across_rounds () =
  let s = Session.create ~ram_size:4096 () in
  Session.advance_time s ~seconds:1.0;
  let tr = Session.enable_tracing ~capacity:2 s in
  for _ = 1 to 5 do
    ignore (Session.attest_round_r s)
  done;
  let rounds = Trace.rounds tr in
  Alcotest.(check int) "ring keeps the newest two" 2 (List.length rounds);
  Alcotest.(check int) "three evictions" 3
    (Ra_obs.Recorder.evicted (Trace.recorder tr));
  (match rounds with
  | [ a; b ] ->
    Alcotest.(check int) "consecutive ids, oldest first" 1
      (b.Trace.rd_trace_id - a.Trace.rd_trace_id)
  | _ -> Alcotest.fail "expected two rounds");
  Session.disable_tracing s;
  Alcotest.(check bool) "tracer detached" true (Session.tracing s = None);
  ignore (Session.attest_round_r s);
  Alcotest.(check int) "no recording after disable" 2
    (List.length (Trace.rounds tr))

let test_fleet_slo_watchdog () =
  let fleet = Fleet.create ~ram_size:4096 ~names:[ "slo-a"; "slo-b" ] () in
  Alcotest.(check (list (Alcotest.of_pp Fmt.nop)))
    "no vacuous checks before any sweep" [] (Fleet.slo_watch fleet);
  Fleet.enable_tracing fleet;
  ignore
    (Fleet.chaos_sweep ~rounds_per_member:2 ~losses:[ 0.2 ]
       ~policies:[ ("default", Retry.default) ]
       fleet);
  let rounds = Fleet.recent_rounds fleet in
  Alcotest.(check int) "every round recorded" 4 (List.length rounds);
  Alcotest.(check bool) "all well-formed" true (List.for_all well_formed rounds);
  let devices = List.sort_uniq compare (List.map (fun r -> r.Trace.rd_device) rounds) in
  Alcotest.(check (list string)) "member names as devices" [ "slo-a"; "slo-b" ]
    devices;
  let checks = Fleet.slo_watch fleet in
  Alcotest.(check bool) "convergence + latency + rejection checks" true
    (List.length checks >= 3);
  Alcotest.(check (list (Alcotest.of_pp Fmt.nop))) "objectives met" []
    (Slo.breaches checks);
  (* an impossible p99 objective must surface as a typed breach *)
  let strict =
    { Fleet.default_slo_policy with Fleet.slo_max_p99_s = 0.0 }
  in
  let breached = Slo.breaches (Fleet.slo_watch ~policy:strict fleet) in
  Alcotest.(check bool) "strict policy breaches" true (breached <> []);
  List.iter
    (fun ck ->
      Alcotest.(check string) "breached objective" "chaos_p99_latency"
        ck.Slo.ck_objective.Slo.slo_name)
    breached;
  (* the snapshot carries the default-policy checks *)
  let snap = Fleet.health_snapshot fleet in
  Alcotest.(check int) "snapshot embeds slo checks" (List.length checks)
    (List.length snap.Fleet.s_slo)

let tests =
  [
    Alcotest.test_case "timeout round traced" `Quick test_timeout_round_traced;
    Alcotest.test_case "benign round traced" `Quick test_benign_round_traced;
    Alcotest.test_case "wire neutrality" `Quick test_wire_neutrality;
    Alcotest.test_case "recorder bound across rounds" `Quick
      test_recorder_bound_across_rounds;
    Alcotest.test_case "fleet slo watchdog" `Quick test_fleet_slo_watchdog;
  ]
