open Ra_core
module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Secure_boot = Ra_mcu.Secure_boot
module Ea_mpu = Ra_mcu.Ea_mpu

let key_blob = Auth.prover_key_blob ~sym_key:(String.make 20 'k') ~public:None

let test_all_specs_boot () =
  List.iter
    (fun spec ->
      let prover = Architecture.build ~ram_size:4096 ~key_blob spec in
      match prover.Architecture.boot_outcome with
      | Secure_boot.Booted -> ()
      | Secure_boot.Rejected_bad_image _ ->
        Alcotest.failf "%s failed to boot" spec.Architecture.spec_name)
    Architecture.all_specs

let test_spec_rule_counts () =
  let rules spec =
    let prover = Architecture.build ~ram_size:4096 ~key_blob spec in
    Ea_mpu.rule_count (Device.mpu prover.Architecture.device)
  in
  Alcotest.(check int) "unprotected: none" 0 (rules Architecture.unprotected);
  Alcotest.(check int) "smart-like: key only" 1 (rules Architecture.smart_like);
  Alcotest.(check int) "trustlite-base: key+counter" 2 (rules Architecture.trustlite_base);
  Alcotest.(check int) "sw-clock: +msb,idt,irq" 5 (rules Architecture.trustlite_sw_clock)

let test_lock_states () =
  let locked spec =
    let prover = Architecture.build ~ram_size:4096 ~key_blob spec in
    Ea_mpu.is_locked (Device.mpu prover.Architecture.device)
  in
  Alcotest.(check bool) "unprotected unlocked" false (locked Architecture.unprotected);
  Alcotest.(check bool) "trustlite locked" true (locked Architecture.trustlite_base)

let test_tampered_image_refused () =
  (* build a prover manually with a corrupted application image *)
  let spec = Architecture.trustlite_base in
  let device =
    Device.create ~ram_size:4096 ~clock_impl:spec.Architecture.clock_impl ~key:key_blob ()
  in
  Secure_boot.install_image (Device.memory device) ~region:Device.region_app
    Architecture.app_image;
  let region = Memory.region_named (Device.memory device) Device.region_app in
  Memory.write_byte (Device.memory device) region.Ra_mcu.Region.base
    (Memory.read_byte (Device.memory device) region.Ra_mcu.Region.base lxor 0xFF);
  let outcome =
    Secure_boot.boot (Device.cpu device) None
      {
        Secure_boot.reference_digest = Secure_boot.digest_image Architecture.app_image;
        protection_rules = [];
        lock_mpu = true;
        enable_interrupts = false;
      }
      ~region:Device.region_app
      ~image_len:(String.length Architecture.app_image.Secure_boot.code)
  in
  (match outcome with
  | Secure_boot.Rejected_bad_image _ -> ()
  | Secure_boot.Booted -> Alcotest.fail "tampered image booted")

let test_with_helpers () =
  let s = Architecture.with_name Architecture.smart_like "renamed" in
  Alcotest.(check string) "rename" "renamed" s.Architecture.spec_name;
  let s2 = Architecture.with_scheme s None in
  Alcotest.(check bool) "scheme cleared" true (s2.Architecture.scheme = None);
  let s3 = Architecture.with_policy s2 Freshness.No_freshness in
  Alcotest.(check bool) "policy cleared" true
    (s3.Architecture.policy = Freshness.No_freshness)

let test_reboot_preserves_security_state () =
  let spec =
    { (Architecture.with_policy Architecture.trustlite_base Freshness.Counter) with
      Architecture.clock_impl = Ra_mcu.Device.Clock_none }
  in
  let prover = Architecture.build ~ram_size:4096 ~key_blob spec in
  (* process a request with counter 7 *)
  let tag body = Auth.tag_request Ra_mcu.Timing.Auth_hmac_sha1
      (Auth.Vs_symmetric (String.make 20 'k')) ~body
  in
  let req counter =
    let freshness = Message.F_counter counter in
    let body = Message.request_body ~challenge:"c" ~freshness in
    { Message.challenge = "c"; freshness; tag = tag body }
  in
  (match Code_attest.handle_request_r prover.Architecture.anchor (req 7L) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "pre-reboot request failed: %a" Verdict.pp e);
  (* reboot: secure boot reruns, rules are re-locked *)
  let prover' = Architecture.reboot prover in
  (match prover'.Architecture.boot_outcome with
  | Secure_boot.Booted -> ()
  | Secure_boot.Rejected_bad_image _ -> Alcotest.fail "reboot refused");
  Alcotest.(check bool) "MPU re-locked" true
    (Ea_mpu.is_locked (Device.mpu prover'.Architecture.device));
  (* the counter survived NVM: replaying the pre-reboot request fails *)
  (match Code_attest.handle_request_r prover'.Architecture.anchor (req 7L) with
  | Error (Verdict.Not_fresh (Verdict.Stale_counter { stored = 7L; _ })) -> ()
  | Ok _ -> Alcotest.fail "reboot rolled the counter back!"
  | Error e -> Alcotest.failf "unexpected reject: %a" Verdict.pp e);
  (* a genuinely fresh request still works *)
  (match Code_attest.handle_request_r prover'.Architecture.anchor (req 8L) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "post-reboot request failed: %a" Verdict.pp e)

let test_deterministic_reference_image () =
  (* two provers built with the same seed measure identically *)
  let p1 = Architecture.build ~ram_seed:5L ~ram_size:4096 ~key_blob Architecture.trustlite_base in
  let p2 = Architecture.build ~ram_seed:5L ~ram_size:4096 ~key_blob Architecture.trustlite_base in
  Alcotest.(check bool) "identical measurements" true
    (Code_attest.measure_memory p1.Architecture.anchor
    = Code_attest.measure_memory p2.Architecture.anchor);
  let p3 = Architecture.build ~ram_seed:6L ~ram_size:4096 ~key_blob Architecture.trustlite_base in
  Alcotest.(check bool) "different seed differs" true
    (Code_attest.measure_memory p1.Architecture.anchor
    <> Code_attest.measure_memory p3.Architecture.anchor)

let tests =
  [
    Alcotest.test_case "all specs boot" `Quick test_all_specs_boot;
    Alcotest.test_case "rule counts per spec" `Quick test_spec_rule_counts;
    Alcotest.test_case "lock states" `Quick test_lock_states;
    Alcotest.test_case "tampered image refused" `Quick test_tampered_image_refused;
    Alcotest.test_case "with_* helpers" `Quick test_with_helpers;
    Alcotest.test_case "reboot preserves security state" `Quick
      test_reboot_preserves_security_state;
    Alcotest.test_case "deterministic reference image" `Quick
      test_deterministic_reference_image;
  ]
