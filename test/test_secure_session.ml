open Ra_core
module Channel = Ra_net.Channel
module Impairment = Ra_net.Impairment
module SS = Secure_session

(* [advance_time 1.0] steps past the t=0 timestamp-freshness corner
   (first request at device time 0 reads as a replay of itself) so
   pristine-channel tests converge on the first flight, like the fleet's
   1 s stagger does. *)
let make ?sym_key () =
  let s = Session.create ?sym_key ~ram_size:2048 () in
  Session.advance_time s ~seconds:1.0;
  s

let pump s =
  let rec go n =
    if n > 0 then begin
      let a = Session.deliver_next_to_prover s in
      let b = Session.deliver_next_to_verifier s in
      if a || b then go (n - 1)
    end
  in
  go 1000

let establish ?window_bits s =
  let r = SS.listen ?window_bits s in
  let i = SS.connect ?window_bits s in
  SS.handshake_send i;
  pump s;
  (r, i)

(* the wire frames appended since [pos], oldest first *)
let frames_from s ~pos =
  List.map
    (fun e -> e.Channel.payload)
    (Channel.transcript_from (Session.channel s) ~pos)

let wire_len s = Channel.transcript_length (Session.channel s)

(* ---- anti-replay window ----------------------------------------------- *)

let result = Alcotest.testable
    (Fmt.of_to_string (function
      | SS.Window.Fresh -> "fresh"
      | SS.Window.Replayed -> "replayed"
      | SS.Window.Stale -> "stale"))
    ( = )

let test_window_basics () =
  let w = SS.Window.create () in
  Alcotest.(check int) "capacity" 128 (SS.Window.capacity w);
  Alcotest.check result "seq 0 stale" SS.Window.Stale (SS.Window.accept w 0L);
  Alcotest.check result "first accept" SS.Window.Fresh (SS.Window.accept w 1L);
  Alcotest.check result "duplicate" SS.Window.Replayed (SS.Window.accept w 1L);
  Alcotest.check result "check is honest" SS.Window.Replayed (SS.Window.check w 1L);
  Alcotest.check result "ahead" SS.Window.Fresh (SS.Window.accept w 5L);
  Alcotest.check result "reordered" SS.Window.Fresh (SS.Window.accept w 3L);
  Alcotest.check result "reordered dup" SS.Window.Replayed (SS.Window.accept w 3L);
  Alcotest.(check int64) "max tracks highest" 5L (SS.Window.max_seq w)

let test_window_check_nonmutating () =
  let w = SS.Window.create () in
  Alcotest.check result "check fresh" SS.Window.Fresh (SS.Window.check w 7L);
  Alcotest.check result "check again still fresh" SS.Window.Fresh (SS.Window.check w 7L);
  Alcotest.(check int64) "max untouched" 0L (SS.Window.max_seq w);
  Alcotest.check result "accept after checks" SS.Window.Fresh (SS.Window.accept w 7L)

let test_window_slide () =
  let w = SS.Window.create () in
  Alcotest.check result "seed" SS.Window.Fresh (SS.Window.accept w 1L);
  (* a jump far past the window slides it; everything that fell off the
     left edge is stale, in-window holes stay fresh exactly once *)
  Alcotest.check result "jump" SS.Window.Fresh (SS.Window.accept w 1000L);
  Alcotest.check result "left edge out" SS.Window.Stale (SS.Window.check w 872L);
  Alcotest.check result "oldest in-window" SS.Window.Fresh (SS.Window.accept w 873L);
  Alcotest.check result "old mark fell off, not replayed" SS.Window.Stale
    (SS.Window.check w 1L);
  (* sliding zeroed the wrapped blocks: no phantom replay from seq 1's bit *)
  Alcotest.check result "no phantom replay after wrap" SS.Window.Fresh
    (SS.Window.accept w 993L);
  Alcotest.check result "real replay after wrap" SS.Window.Replayed
    (SS.Window.accept w 993L)

let test_window_bad_bits () =
  Alcotest.check_raises "zero bits"
    (Invalid_argument
       "Secure_session.Window.create: bits must be a positive multiple of 32")
    (fun () -> ignore (SS.Window.create ~bits:0 ()));
  Alcotest.check_raises "not a multiple of 32"
    (Invalid_argument
       "Secure_session.Window.create: bits must be a positive multiple of 32")
    (fun () -> ignore (SS.Window.create ~bits:33 ()))

(* the window agrees with the obvious (unbounded-memory) model on any
   accept sequence: Fresh iff unseen and within [capacity] of the max *)
let qcheck_window_matches_model =
  QCheck.Test.make ~name:"secure: window = set+max model" ~count:200
    QCheck.(list_of_size Gen.(1 -- 120) (int_range 1 400))
    (fun seqs ->
      let w = SS.Window.create () in
      let cap = SS.Window.capacity w in
      let seen = Hashtbl.create 64 in
      let max_seen = ref 0 in
      List.for_all
        (fun seq ->
          let expected =
            if seq <= !max_seen && !max_seen - seq >= cap then SS.Window.Stale
            else if Hashtbl.mem seen seq then SS.Window.Replayed
            else SS.Window.Fresh
          in
          let got = SS.Window.accept w (Int64.of_int seq) in
          if got = SS.Window.Fresh then begin
            Hashtbl.replace seen seq ();
            if seq > !max_seen then max_seen := seq
          end;
          got = expected)
        seqs)

(* ---- happy path -------------------------------------------------------- *)

let test_pristine_session_round () =
  let s = make () in
  let r = SS.run_r ~records:3 s in
  (match r.Session.r_verdict with
  | Verdict.Trusted -> ()
  | v -> Alcotest.failf "expected trusted, got %a" Verdict.pp v);
  (* pristine wire: handshake + 3 records + close, one transmission each *)
  Alcotest.(check int) "transmissions" 5 r.Session.r_attempts;
  Alcotest.(check bool) "anchor time elapsed" true (r.Session.r_elapsed_s > 0.0)

let test_zero_records_session () =
  let s = make () in
  let r = SS.run_r ~records:0 s in
  (match r.Session.r_verdict with
  | Verdict.Trusted -> ()
  | v -> Alcotest.failf "expected trusted, got %a" Verdict.pp v);
  Alcotest.(check int) "handshake + close only" 2 r.Session.r_attempts

let test_deterministic_transcripts () =
  let run () =
    let s = make () in
    let r = SS.run_r ~records:2 s in
    (r.Session.r_verdict, r.Session.r_attempts, frames_from s ~pos:0)
  in
  let v1, a1, t1 = run () in
  let v2, a2, t2 = run () in
  Alcotest.(check bool) "verdicts equal" true (v1 = v2);
  Alcotest.(check int) "attempts equal" a1 a2;
  Alcotest.(check (list string)) "wire byte-identical" t1 t2

let test_handshake_and_streaming_by_hand () =
  let s = make () in
  let r, i = establish s in
  Alcotest.(check bool) "established" true (SS.established i);
  Alcotest.(check bool) "responder keys up" true (SS.responder_session_up r);
  Alcotest.(check bool) "hs_fin confirmed" true (SS.confirmed r);
  Alcotest.(check int) "established counted" 1 (SS.initiator_stats i).SS.s_established;
  Alcotest.(check bool) "record sent" true (SS.request_round i);
  pump s;
  Alcotest.(check int) "one verdict" 1 (SS.verdict_count i);
  (match SS.session_verdicts i with
  | [ (_, Verdict.Trusted) ] -> ()
  | _ -> Alcotest.fail "expected one trusted in-session verdict");
  Alcotest.(check int) "responder opened the request" 1
    (SS.responder_stats r).SS.s_accepted;
  Alcotest.(check int) "initiator opened the response" 1
    (SS.initiator_stats i).SS.s_accepted;
  Alcotest.(check bool) "close sent" true (SS.close_begin i);
  pump s;
  Alcotest.(check bool) "close acked" true (SS.close_acked i);
  Alcotest.(check bool) "initiator closed" true (SS.closed i);
  Alcotest.(check bool) "responder tore down" false (SS.responder_session_up r)

let test_implicit_confirmation_without_fin () =
  (* a lost Hs_fin must not wedge the session: the first valid record is
     implicit key confirmation *)
  let s = make () in
  let r = SS.listen s in
  let i = SS.connect s in
  SS.handshake_send i;
  (* forward Hs_init and Hs_resp, then drop the Hs_fin flight *)
  ignore (Session.deliver_next_to_prover s);
  ignore (Session.deliver_next_to_verifier s);
  Alcotest.(check bool) "established" true (SS.established i);
  Alcotest.(check bool) "fin dropped" true
    (Channel.drop_next (Session.channel s) ~src:Channel.Verifier_side);
  Alcotest.(check bool) "not yet confirmed" false (SS.confirmed r);
  ignore (SS.request_round i);
  pump s;
  Alcotest.(check bool) "record confirmed the keys" true (SS.confirmed r);
  Alcotest.(check int) "verdict arrived" 1 (SS.verdict_count i)

(* ---- adversary suite --------------------------------------------------- *)

let test_mitm_init_substitution_rejected () =
  let s = make () in
  let r = SS.listen s in
  let i = SS.connect s in
  let pos = wire_len s in
  SS.handshake_send i;
  let init_frame =
    match frames_from s ~pos with [ f ] -> f | _ -> Alcotest.fail "expected one flight"
  in
  (* the MITM swallows the real Hs_init and forwards one with a replaced
     session nonce — the embedded attestation request is untouched, so
     the anchor still answers; only the transcript hash can catch it *)
  Alcotest.(check bool) "intercepted" true
    (Channel.drop_next (Session.channel s) ~src:Channel.Verifier_side);
  (match Message.wire_of_bytes init_frame with
  | Some (Message.Hs_init { hs_nonce; hs_req }) ->
    let forged = Message.Hs_init { hs_nonce = String.map (fun _ -> 'x') hs_nonce; hs_req } in
    Channel.deliver (Session.channel s) ~dst:Channel.Prover_side
      (Message.wire_to_bytes forged)
  | _ -> Alcotest.fail "expected an Hs_init flight");
  Alcotest.(check bool) "responder answered" true (SS.responder_session_up r);
  ignore (Session.deliver_next_to_verifier s);
  Alcotest.(check bool) "session not established" false (SS.established i);
  Alcotest.(check int) "bind rejected" 1 (SS.initiator_stats i).SS.s_hs_rejected;
  Alcotest.(check bool) "trace names the bind" true
    (Ra_net.Trace.find (Session.trace s) ~substring:"handshake bind rejected" <> [])

let test_cross_session_splice_rejected () =
  (* same K_attest, two distinct sessions (B's verifier burned one extra
     nonce, so its handshake bytes differ): a record sealed in A must not
     open in B — channel keys are per-transcript, not per-device-key *)
  let key = String.make 20 's' in
  let sa = make ~sym_key:key () in
  let sb = make ~sym_key:key () in
  ignore (Verifier.session_nonce (Session.verifier sb));
  let _ra, ia = establish sa in
  let rb, ib = establish sb in
  Alcotest.(check bool) "A established" true (SS.established ia);
  Alcotest.(check bool) "B established" true (SS.established ib);
  let pos = wire_len sa in
  ignore (SS.request_round ia);
  let record_frame =
    match frames_from sa ~pos with [ f ] -> f | _ -> Alcotest.fail "expected one record"
  in
  let before = wire_len sb in
  Session.deliver_frame_to_prover sb record_frame;
  Alcotest.(check int) "B rejects the spliced record" 1
    (SS.responder_stats rb).SS.s_bad_record;
  Alcotest.(check int) "B answered nothing" before (wire_len sb);
  (* B's session is unharmed: its own round still verifies *)
  ignore (SS.request_round ib);
  pump sb;
  Alcotest.(check int) "B still live" 1 (SS.verdict_count ib)

let test_replay_inside_and_outside_window () =
  let s = make () in
  let r, i = establish ~window_bits:32 s in
  let round () =
    let pos = wire_len s in
    ignore (SS.request_round i);
    let frame =
      match frames_from s ~pos with
      | f :: _ -> f
      | [] -> Alcotest.fail "no record frame"
    in
    pump s;
    frame
  in
  let first = round () in
  let second = round () in
  Alcotest.(check int) "two verdicts" 2 (SS.verdict_count i);
  (* replay inside the window: the sequence number's bit is set *)
  Session.deliver_frame_to_prover s second;
  Alcotest.(check int) "in-window replay flagged" 1 (SS.responder_stats r).SS.s_replayed;
  (* push the window past capacity 32, then replay the very first record *)
  for _ = 1 to 32 do
    ignore (round ())
  done;
  Session.deliver_frame_to_prover s first;
  Alcotest.(check int) "out-of-window replay stale" 1 (SS.responder_stats r).SS.s_stale;
  Alcotest.(check int) "no forged accepts" 34 (SS.responder_stats r).SS.s_accepted;
  (* rejects never poison the stream: the next round still verifies *)
  ignore (SS.request_round i);
  pump s;
  Alcotest.(check int) "session still live" 35 (SS.verdict_count i)

let test_tampered_records_reject_uniformly () =
  let s = make () in
  let r, i = establish s in
  let pos = wire_len s in
  ignore (SS.request_round i);
  let legit =
    match frames_from s ~pos with [ f ] -> f | _ -> Alcotest.fail "expected one record"
  in
  Alcotest.(check bool) "held back" true
    (Channel.drop_next (Session.channel s) ~src:Channel.Verifier_side);
  let flip b = String.mapi (fun k c -> if k = 0 then Char.chr (Char.code c lxor 1) else c) b in
  let tampered_ct, tampered_tag =
    match Message.wire_of_bytes legit with
    | Some (Message.Record rc) ->
      ( Message.wire_to_bytes (Message.Record { rc with rec_ct = flip rc.rec_ct }),
        Message.wire_to_bytes (Message.Record { rc with rec_tag = flip rc.rec_tag }) )
    | _ -> Alcotest.fail "expected a record frame"
  in
  let trace = Session.trace s in
  let reaction forged =
    let wire_before = wire_len s in
    let trace_before = List.length (Ra_net.Trace.entries trace) in
    let bad_before = (SS.responder_stats r).SS.s_bad_record in
    Channel.deliver (Session.channel s) ~dst:Channel.Prover_side forged;
    let entries =
      List.filteri
        (fun k _ -> k >= trace_before)
        (List.map (fun e -> e.Ra_net.Trace.label) (Ra_net.Trace.entries trace))
    in
    ( wire_len s - wire_before,
      (SS.responder_stats r).SS.s_bad_record - bad_before,
      entries )
  in
  let sent_ct, count_ct, trace_ct = reaction tampered_ct in
  let sent_tag, count_tag, trace_tag = reaction tampered_tag in
  (* one uniform reject: same counter, same silence, same trace shape —
     no observable distinguishes a bad tag from bad ciphertext *)
  Alcotest.(check int) "ct tamper: silent" 0 sent_ct;
  Alcotest.(check int) "tag tamper: silent" 0 sent_tag;
  Alcotest.(check int) "ct tamper: one bad_record" 1 count_ct;
  Alcotest.(check int) "tag tamper: one bad_record" 1 count_tag;
  Alcotest.(check (list string)) "identical trace reaction" trace_ct trace_tag;
  Alcotest.(check bool) "the uniform line" true
    (List.exists (Ra_net.Trace.contains_substring ~needle:"secure: record rejected") trace_ct);
  (* forgeries never advanced the window: the held-back original still opens *)
  Session.deliver_frame_to_prover s legit;
  pump s;
  Alcotest.(check int) "legit record survives the forgeries" 1 (SS.verdict_count i);
  Alcotest.(check int) "no replay miscount" 0 (SS.responder_stats r).SS.s_replayed

let test_refused_on_untrusted_report () =
  let s = make () in
  let device = Session.device s in
  Ra_mcu.Memory.write_byte
    (Ra_mcu.Device.memory device)
    (Ra_mcu.Device.attested_base device)
    0xEE;
  let r = SS.run_r ~records:3 s in
  (match r.Session.r_verdict with
  | Verdict.Untrusted_state -> ()
  | v -> Alcotest.failf "expected untrusted_state, got %a" Verdict.pp v);
  (* refusal is immediate — no streaming, no retries against bad memory *)
  Alcotest.(check int) "one flight only" 1 r.Session.r_attempts

(* ---- impairment -------------------------------------------------------- *)

let impaired s profile ~seed =
  Session.set_impairment s
    (Some (Impairment.create ~to_prover:profile ~to_verifier:profile ~seed ()))

let test_survives_duplication_and_reorder () =
  let s = make () in
  impaired s
    { Impairment.loss = Impairment.Iid 0.0; duplicate = 0.35; reorder = 0.35;
      corrupt = 0.0; delay = 0.0; delay_s = 0.0 }
    ~seed:11L;
  let r = SS.run_r ~records:5 s in
  (match r.Session.r_verdict with
  | Verdict.Trusted -> ()
  | v -> Alcotest.failf "expected trusted under dup/reorder, got %a" Verdict.pp v)

let test_converges_under_20pct_loss () =
  let s = make () in
  impaired s (Impairment.lossy 0.2) ~seed:3L;
  let r = SS.run_r ~records:4 s in
  (match r.Session.r_verdict with
  | Verdict.Trusted -> ()
  | v -> Alcotest.failf "expected trusted under 20%% loss, got %a" Verdict.pp v);
  Alcotest.(check bool) "losses cost retransmissions" true (r.Session.r_attempts >= 6)

let test_all_frames_lost_times_out () =
  let s = make () in
  impaired s (Impairment.lossy 1.0) ~seed:5L;
  let r = SS.run_r ~policy:Retry.impatient ~records:2 s in
  match r.Session.r_verdict with
  | Verdict.Timed_out { attempts; _ } ->
    Alcotest.(check int) "every attempt transmitted" attempts r.Session.r_attempts
  | v -> Alcotest.failf "expected timed_out on a dead wire, got %a" Verdict.pp v

(* ---- observability is out-of-band -------------------------------------- *)

let test_tracing_profiling_wire_neutral () =
  let bare =
    let s = make () in
    ignore (SS.run_r ~records:3 s);
    frames_from s ~pos:0
  in
  let observed =
    let s = make () in
    ignore (Session.enable_tracing s);
    ignore (Session.enable_profiling s);
    ignore (SS.run_r ~records:3 s);
    frames_from s ~pos:0
  in
  Alcotest.(check (list string)) "transcripts byte-identical" bare observed

(* ---- fleet engine identity --------------------------------------------- *)

let fleet_fingerprint ~seed ~loss ~records engine =
  let t = Fleet.create ~ram_size:2048 ~names:[ "m0"; "m1" ] () in
  let cells =
    Fleet.chaos_sweep ~seed ~rounds_per_member:2 ~engine ~workload:(`Session records)
      ~losses:[ loss ]
      ~policies:[ ("default", Retry.default) ]
      t
  in
  let wire =
    String.concat "@"
      (List.map
         (fun m ->
           String.concat "|" (frames_from (Fleet.member_session m) ~pos:0))
         (Fleet.members t))
  in
  (cells, Digest.to_hex (Digest.string wire))

let qcheck_engines_byte_identical =
  QCheck.Test.make ~name:"secure: session transcripts identical across engines"
    ~count:3
    QCheck.(triple (int_range 1 1000) (int_range 0 3) (int_range 0 2))
    (fun (seed, loss_decile, records) ->
      let seed = Int64.of_int seed and loss = float_of_int loss_decile /. 10.0 in
      let cells_seq, wire_seq = fleet_fingerprint ~seed ~loss ~records `Seq in
      let cells_ev, wire_ev = fleet_fingerprint ~seed ~loss ~records `Events in
      let cells_sh, wire_sh = fleet_fingerprint ~seed ~loss ~records (`Shards 2) in
      cells_seq = cells_ev && cells_seq = cells_sh && wire_seq = wire_ev
      && wire_seq = wire_sh)

let test_chaos_sweep_session_workload () =
  let t = Fleet.create ~ram_size:2048 ~names:[ "a"; "b"; "c" ] () in
  let cells =
    Fleet.chaos_sweep ~seed:42L ~rounds_per_member:2 ~workload:(`Session 3)
      ~losses:[ 0.0; 0.2 ]
      ~policies:[ ("default", Retry.default) ]
      t
  in
  Alcotest.(check int) "two cells" 2 (List.length cells);
  List.iter
    (fun c ->
      Alcotest.(check int)
        (Printf.sprintf "loss %.1f converges" c.Fleet.c_loss)
        c.Fleet.c_rounds c.Fleet.c_converged)
    cells

let test_workload_labels () =
  Alcotest.(check string) "attest label" "attest" (Fleet.workload_label `Attest);
  Alcotest.(check string) "session label" "session:4" (Fleet.workload_label (`Session 4));
  (match Fleet.workload_of_label "session:4" with
  | Some (`Session 4) -> ()
  | _ -> Alcotest.fail "session:4 should parse");
  (match Fleet.workload_of_label "attest" with
  | Some `Attest -> ()
  | _ -> Alcotest.fail "attest should parse");
  Alcotest.(check bool) "garbage refused" true (Fleet.workload_of_label "session:" = None);
  Alcotest.(check bool) "negative refused" true
    (Fleet.workload_of_label "session:-1" = None)

let tests =
  [
    Alcotest.test_case "window basics" `Quick test_window_basics;
    Alcotest.test_case "window check is non-mutating" `Quick test_window_check_nonmutating;
    Alcotest.test_case "window slides and forgets" `Quick test_window_slide;
    Alcotest.test_case "window rejects bad widths" `Quick test_window_bad_bits;
    QCheck_alcotest.to_alcotest qcheck_window_matches_model;
    Alcotest.test_case "pristine session round" `Quick test_pristine_session_round;
    Alcotest.test_case "zero-record session" `Quick test_zero_records_session;
    Alcotest.test_case "deterministic transcripts" `Quick test_deterministic_transcripts;
    Alcotest.test_case "handshake and streaming by hand" `Quick
      test_handshake_and_streaming_by_hand;
    Alcotest.test_case "lost hs_fin: records confirm" `Quick
      test_implicit_confirmation_without_fin;
    Alcotest.test_case "mitm init substitution rejected" `Quick
      test_mitm_init_substitution_rejected;
    Alcotest.test_case "cross-session splice rejected" `Quick
      test_cross_session_splice_rejected;
    Alcotest.test_case "replay inside and outside window" `Quick
      test_replay_inside_and_outside_window;
    Alcotest.test_case "tampered records reject uniformly" `Quick
      test_tampered_records_reject_uniformly;
    Alcotest.test_case "untrusted report refuses the session" `Quick
      test_refused_on_untrusted_report;
    Alcotest.test_case "survives duplication and reorder" `Quick
      test_survives_duplication_and_reorder;
    Alcotest.test_case "converges under 20% loss" `Quick test_converges_under_20pct_loss;
    Alcotest.test_case "dead wire times out" `Quick test_all_frames_lost_times_out;
    Alcotest.test_case "tracing/profiling wire-neutral" `Quick
      test_tracing_profiling_wire_neutral;
    QCheck_alcotest.to_alcotest qcheck_engines_byte_identical;
    Alcotest.test_case "chaos sweep session workload" `Quick
      test_chaos_sweep_session_workload;
    Alcotest.test_case "workload labels round-trip" `Quick test_workload_labels;
  ]
