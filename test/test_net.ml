open Ra_net

let test_simtime () =
  let t = Simtime.create () in
  Alcotest.(check (float 0.0)) "starts at 0" 0.0 (Simtime.now t);
  Simtime.advance_by t 1.5;
  Simtime.advance_to t 3.0;
  Alcotest.(check (float 0.0)) "advanced" 3.0 (Simtime.now t);
  Alcotest.check_raises "negative delta" (Invalid_argument "Simtime.advance_by: negative delta")
    (fun () -> Simtime.advance_by t (-1.0));
  Alcotest.check_raises "backwards" (Invalid_argument "Simtime.advance_to: target in the past")
    (fun () -> Simtime.advance_to t 2.0)

let test_trace () =
  let time = Simtime.create () in
  let trace = Trace.create time in
  Trace.record trace "first";
  Simtime.advance_by time 2.0;
  Trace.recordf trace "second %d" 42;
  (match Trace.entries trace with
  | [ a; b ] ->
    Alcotest.(check string) "order" "first" a.Trace.label;
    Alcotest.(check (float 0.0)) "timestamp" 2.0 b.Trace.at;
    Alcotest.(check string) "formatted" "second 42" b.Trace.label
  | entries -> Alcotest.failf "expected 2 entries, got %d" (List.length entries));
  Alcotest.(check int) "find" 1 (List.length (Trace.find trace ~substring:"second"))

(* reference implementation the allocation-free search must agree with:
   the old O(n*m)-allocation [String.sub]-per-position scan *)
let contains_substring_ref ~needle hay =
  let n = String.length needle and h = String.length hay in
  if n = 0 then true
  else if n > h then false
  else begin
    let found = ref false in
    for i = 0 to h - n do
      if (not !found) && String.sub hay i n = needle then found := true
    done;
    !found
  end

let prop_contains_substring =
  let gen =
    QCheck.Gen.(
      pair
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 6))
        (string_size ~gen:(oneofl [ 'a'; 'b'; 'c' ]) (int_range 0 40)))
  in
  (* a 3-letter alphabet makes both hits and near-misses common *)
  QCheck.Test.make ~count:2000
    ~name:"Trace.contains_substring agrees with String.sub reference"
    (QCheck.make gen ~print:(fun (n, h) -> Printf.sprintf "needle=%S hay=%S" n h))
    (fun (needle, hay) ->
      Trace.contains_substring ~needle hay = contains_substring_ref ~needle hay)

let test_contains_substring_edges () =
  let check name expect needle hay =
    Alcotest.(check bool) name expect (Trace.contains_substring ~needle hay)
  in
  check "empty needle" true "" "abc";
  check "empty both" true "" "";
  check "needle longer" false "abc" "ab";
  check "exact" true "abc" "abc";
  check "suffix" true "bc" "abc";
  check "false prefix then match" true "aab" "aaab";
  check "near miss" false "abd" "abcabc"

let make_channel () =
  let time = Simtime.create () in
  let trace = Trace.create time in
  (time, Channel.create time trace)

let test_send_does_not_deliver () =
  let _, ch = make_channel () in
  let got = ref [] in
  ignore (Channel.Endpoint.attach ch Channel.Prover_side (fun m -> got := m :: !got));
  Channel.send ch ~src:Channel.Verifier_side "hello";
  Alcotest.(check int) "nothing delivered" 0 (List.length !got);
  Alcotest.(check int) "on the wire" 1 (List.length (Channel.undelivered ch))

let test_transcript_is_permanent () =
  let _, ch = make_channel () in
  ignore (Channel.Endpoint.attach ch Channel.Prover_side (fun _ -> ()));
  Channel.send ch ~src:Channel.Verifier_side "m1";
  let _ = Channel.forward_next ch ~dst:Channel.Prover_side in
  (* delivered messages stay in the eavesdropper's transcript *)
  Alcotest.(check int) "transcript keeps everything" 1
    (List.length (Channel.transcript ch));
  Alcotest.(check int) "pending drained" 0 (List.length (Channel.undelivered ch))

let test_forward_next_order_and_direction () =
  let _, ch = make_channel () in
  let got = ref [] in
  ignore (Channel.Endpoint.attach ch Channel.Prover_side (fun m -> got := m :: !got));
  Channel.send ch ~src:Channel.Verifier_side "m1";
  Channel.send ch ~src:Channel.Prover_side "resp";
  Channel.send ch ~src:Channel.Verifier_side "m2";
  Alcotest.(check bool) "first forward" true (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check bool) "second forward" true (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check bool) "no more verifier msgs" false
    (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check (list string)) "fifo order, right direction" [ "m2"; "m1" ] !got

let test_drop () =
  let _, ch = make_channel () in
  Channel.send ch ~src:Channel.Verifier_side "m1";
  Alcotest.(check bool) "dropped" true (Channel.drop_next ch ~src:Channel.Verifier_side);
  Alcotest.(check int) "gone from pending" 0 (List.length (Channel.undelivered ch));
  Alcotest.(check int) "still in transcript" 1 (List.length (Channel.transcript ch));
  Alcotest.(check bool) "nothing left" false (Channel.drop_next ch ~src:Channel.Verifier_side)

let test_deliver_without_receiver () =
  let _, ch = make_channel () in
  (* must not raise; records a trace entry instead *)
  Channel.deliver ch ~dst:Channel.Verifier_side "orphan"

let test_replay_from_transcript () =
  let _, ch = make_channel () in
  let count = ref 0 in
  ignore (Channel.Endpoint.attach ch Channel.Prover_side (fun _ -> incr count));
  Channel.send ch ~src:Channel.Verifier_side "req";
  let _ = Channel.forward_next ch ~dst:Channel.Prover_side in
  (* adversary replays from the transcript as many times as it likes *)
  (match Channel.transcript ch with
  | [ sent ] ->
    Channel.deliver ch ~dst:Channel.Prover_side sent.Channel.payload;
    Channel.deliver ch ~dst:Channel.Prover_side sent.Channel.payload
  | _ -> Alcotest.fail "expected one transcript entry");
  Alcotest.(check int) "three deliveries total" 3 !count

let test_endpoint_attach_shadows () =
  let _, ch = make_channel () in
  let got = ref [] in
  let tag name m = got := (name, m) :: !got in
  let base = Channel.Endpoint.attach ch Channel.Prover_side (tag "base") in
  Channel.send ch ~src:Channel.Verifier_side "m1";
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  (* a newer handle shadows, not destroys, the existing receiver *)
  let shadow = Channel.Endpoint.attach ch Channel.Prover_side (tag "shadow") in
  Channel.send ch ~src:Channel.Verifier_side "m2";
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  (* detaching the shadow restores the original *)
  Channel.Endpoint.detach shadow;
  Channel.send ch ~src:Channel.Verifier_side "m3";
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check (list (pair string string)))
    "stacked receivers"
    [ ("base", "m3"); ("shadow", "m2"); ("base", "m1") ]
    !got;
  Alcotest.(check bool) "shadow detached" false
    (Channel.Endpoint.is_attached shadow);
  Alcotest.(check bool) "base still attached" true
    (Channel.Endpoint.is_attached base);
  Alcotest.(check bool) "side recorded" true
    (Channel.Endpoint.side base = Channel.Prover_side)

let test_endpoint_detach_idempotent () =
  let _, ch = make_channel () in
  let got = ref 0 in
  let a = Channel.Endpoint.attach ch Channel.Prover_side (fun _ -> incr got) in
  let b = Channel.Endpoint.attach ch Channel.Prover_side (fun _ -> ()) in
  Channel.Endpoint.detach b;
  Channel.Endpoint.detach b;
  (* double-detach must not pop the restored receiver underneath *)
  Channel.send ch ~src:Channel.Verifier_side "m";
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check int) "original receiver survives double detach" 1 !got;
  Channel.Endpoint.detach a;
  Alcotest.(check bool) "fully detached" false (Channel.Endpoint.is_attached a);
  (* no receiver left: delivery records a trace entry instead of raising *)
  Channel.deliver ch ~dst:Channel.Prover_side "orphan";
  Alcotest.(check int) "nothing received" 1 !got

let test_endpoint_mid_stack_detach () =
  let _, ch = make_channel () in
  let got = ref [] in
  let tag name m = got := (name, m) :: !got in
  let _a = Channel.Endpoint.attach ch Channel.Prover_side (tag "a") in
  let b = Channel.Endpoint.attach ch Channel.Prover_side (tag "b") in
  let _c = Channel.Endpoint.attach ch Channel.Prover_side (tag "c") in
  (* detaching below the top must not change who receives *)
  Channel.Endpoint.detach b;
  Channel.send ch ~src:Channel.Verifier_side "m";
  ignore (Channel.forward_next ch ~dst:Channel.Prover_side);
  Alcotest.(check (list (pair string string))) "top still receives"
    [ ("c", "m") ] !got

let test_endpoint_self_detach_in_callback () =
  (* the secure-session teardown shape: a handler detaches {e itself}
     while handling a frame. The in-flight frame must not be
     re-dispatched, and every later frame must fall through to the
     handler below — no skipped or double delivery. *)
  let _, ch = make_channel () in
  let got = ref [] in
  let tag name m = got := (name, m) :: !got in
  let _base = Channel.Endpoint.attach ch Channel.Prover_side (tag "base") in
  let top = ref None in
  let top_handle =
    Channel.Endpoint.attach ch Channel.Prover_side (fun m ->
        tag "top" m;
        if m = "bye" then Option.iter Channel.Endpoint.detach !top)
  in
  top := Some top_handle;
  Channel.deliver ch ~dst:Channel.Prover_side "m1";
  Channel.deliver ch ~dst:Channel.Prover_side "bye";
  Channel.deliver ch ~dst:Channel.Prover_side "m2";
  Alcotest.(check (list (pair string string)))
    "each frame delivered exactly once"
    [ ("base", "m2"); ("top", "bye"); ("top", "m1") ]
    !got;
  Alcotest.(check bool) "top detached" false (Channel.Endpoint.is_attached top_handle)

let test_endpoint_attach_in_callback () =
  (* a handler attaching a new receiver mid-delivery: the frame being
     handled stays with its original handler; only subsequent frames see
     the newcomer *)
  let _, ch = make_channel () in
  let got = ref [] in
  let tag name m = got := (name, m) :: !got in
  let _base =
    Channel.Endpoint.attach ch Channel.Prover_side (fun m ->
        tag "base" m;
        if m = "grow" then
          ignore (Channel.Endpoint.attach ch Channel.Prover_side (tag "late")))
  in
  Channel.deliver ch ~dst:Channel.Prover_side "grow";
  Channel.deliver ch ~dst:Channel.Prover_side "after";
  Alcotest.(check (list (pair string string)))
    "newcomer sees only later frames"
    [ ("late", "after"); ("base", "grow") ]
    !got

let test_endpoint_detach_below_in_callback () =
  (* the top handler rips out the handler {e below} while a frame is in
     flight; the next frame must reach the (new) next-active handler,
     never the dead closure *)
  let _, ch = make_channel () in
  let got = ref [] in
  let tag name m = got := (name, m) :: !got in
  let _floor = Channel.Endpoint.attach ch Channel.Prover_side (tag "floor") in
  let mid = Channel.Endpoint.attach ch Channel.Prover_side (tag "mid") in
  let top = ref None in
  let top_handle =
    Channel.Endpoint.attach ch Channel.Prover_side (fun m ->
        tag "top" m;
        Channel.Endpoint.detach mid;
        Option.iter Channel.Endpoint.detach !top)
  in
  top := Some top_handle;
  Channel.deliver ch ~dst:Channel.Prover_side "m1";
  Channel.deliver ch ~dst:Channel.Prover_side "m2";
  Alcotest.(check (list (pair string string)))
    "frame falls through both detached handles"
    [ ("floor", "m2"); ("top", "m1") ]
    !got

let tests =
  [
    Alcotest.test_case "simtime" `Quick test_simtime;
    Alcotest.test_case "trace" `Quick test_trace;
    Alcotest.test_case "send does not deliver" `Quick test_send_does_not_deliver;
    Alcotest.test_case "transcript is permanent" `Quick test_transcript_is_permanent;
    Alcotest.test_case "forward order/direction" `Quick
      test_forward_next_order_and_direction;
    Alcotest.test_case "drop" `Quick test_drop;
    Alcotest.test_case "deliver without receiver" `Quick test_deliver_without_receiver;
    Alcotest.test_case "replay from transcript" `Quick test_replay_from_transcript;
    Alcotest.test_case "contains_substring edges" `Quick
      test_contains_substring_edges;
    QCheck_alcotest.to_alcotest prop_contains_substring;
    Alcotest.test_case "endpoint attach shadows" `Quick
      test_endpoint_attach_shadows;
    Alcotest.test_case "endpoint detach idempotent" `Quick
      test_endpoint_detach_idempotent;
    Alcotest.test_case "endpoint mid-stack detach" `Quick
      test_endpoint_mid_stack_detach;
    Alcotest.test_case "endpoint self-detach in callback" `Quick
      test_endpoint_self_detach_in_callback;
    Alcotest.test_case "endpoint attach in callback" `Quick
      test_endpoint_attach_in_callback;
    Alcotest.test_case "endpoint detach-below in callback" `Quick
      test_endpoint_detach_below_in_callback;
  ]
