(* Ra_obs: metrics registry semantics, span tracing over Simtime, JSONL
   round-trips and the sweep/sweep_par metric-equality contract. *)

open Ra_obs
module Simtime = Ra_net.Simtime

let fresh () = Registry.create ()

(* --- counters --- *)

let test_counter_semantics () =
  let r = fresh () in
  let c = Registry.Counter.get ~registry:r "requests_total" in
  Alcotest.(check int) "starts at zero" 0 (Registry.Counter.value c);
  Registry.Counter.inc c;
  Registry.Counter.inc ~by:4 c;
  Alcotest.(check int) "accumulates" 5 (Registry.Counter.value c);
  (* same (name, labels) -> same underlying series *)
  let c' = Registry.Counter.get ~registry:r "requests_total" in
  Registry.Counter.inc c';
  Alcotest.(check int) "shared series" 6 (Registry.Counter.value c);
  Alcotest.check_raises "monotonic"
    (Invalid_argument "Ra_obs counter: negative increment") (fun () ->
      Registry.Counter.inc ~by:(-1) c)

let test_label_canonicalization () =
  let r = fresh () in
  let a =
    Registry.Counter.get ~registry:r ~labels:[ ("x", "1"); ("a", "2") ] "m_total"
  in
  (* same label set, different order: must resolve to the same series *)
  let b =
    Registry.Counter.get ~registry:r ~labels:[ ("a", "2"); ("x", "1") ] "m_total"
  in
  Registry.Counter.inc a;
  Registry.Counter.inc b;
  Alcotest.(check int) "one series" 2 (Registry.Counter.value a);
  (* a different label value is a different series of the same family *)
  let other =
    Registry.Counter.get ~registry:r ~labels:[ ("a", "3"); ("x", "1") ] "m_total"
  in
  Alcotest.(check int) "distinct series" 0 (Registry.Counter.value other);
  Alcotest.(check int) "two series in the family" 2
    (List.length (Registry.snapshot r))

let test_kind_conflict () =
  let r = fresh () in
  let _ = Registry.Counter.get ~registry:r "mixed" in
  Alcotest.check_raises "kind is per family"
    (Invalid_argument "Ra_obs.Registry: mixed is already registered as a counter")
    (fun () -> ignore (Registry.Gauge.get ~registry:r "mixed"))

(* --- gauges --- *)

let test_gauge () =
  let r = fresh () in
  let g = Registry.Gauge.get ~registry:r "temperature" in
  Registry.Gauge.set g 21.5;
  Registry.Gauge.add g 0.5;
  Alcotest.(check (float 1e-9)) "set+add" 22.0 (Registry.Gauge.value g);
  Registry.Gauge.add g (-23.0);
  Alcotest.(check (float 1e-9)) "gauges go down" (-1.0) (Registry.Gauge.value g)

(* --- histograms --- *)

let test_histogram () =
  let r = fresh () in
  let h =
    Registry.Histogram.get ~registry:r ~buckets:[| 1.0; 5.0; 10.0 |] "lat_ms"
  in
  List.iter (Registry.Histogram.observe h) [ 0.5; 1.0; 3.0; 7.0; 99.0 ];
  Alcotest.(check int) "count" 5 (Registry.Histogram.count h);
  Alcotest.(check (float 1e-9)) "sum" 110.5 (Registry.Histogram.sum h);
  (* per-bucket (le, n): 1.0 is inclusive; 99 overflows to +Inf *)
  let buckets = Registry.Histogram.buckets h in
  Alcotest.(check (list (pair (float 0.0) int)))
    "bucket assignment"
    [ (1.0, 2); (5.0, 1); (10.0, 1); (infinity, 1) ]
    buckets;
  Alcotest.(check (float 1e-9)) "p50" 5.0 (Registry.Histogram.percentile h 50.0);
  Alcotest.(check (float 1e-9)) "p100 overflows" infinity
    (Registry.Histogram.percentile h 100.0);
  Alcotest.(check bool) "empty percentile is nan" true
    (Float.is_nan
       (Registry.Histogram.percentile
          (Registry.Histogram.get ~registry:r "empty_ms") 50.0));
  Alcotest.check_raises "bounds must increase"
    (Invalid_argument "Ra_obs histogram: bucket bounds must be strictly increasing")
    (fun () ->
      ignore (Registry.Histogram.get ~registry:r ~buckets:[| 2.0; 2.0 |] "bad_ms"))

let test_reset_keeps_handles () =
  let r = fresh () in
  let c = Registry.Counter.get ~registry:r "c_total" in
  let h = Registry.Histogram.get ~registry:r "h_ms" in
  Registry.Counter.inc ~by:7 c;
  Registry.Histogram.observe h 1.0;
  Registry.reset r;
  Alcotest.(check int) "counter zeroed" 0 (Registry.Counter.value c);
  Alcotest.(check int) "histogram zeroed" 0 (Registry.Histogram.count h);
  (* the handle acquired before reset still feeds the same series *)
  Registry.Counter.inc c;
  Alcotest.(check int) "handle survives" 1 (Registry.Counter.value c)

let test_domain_safety () =
  let r = fresh () in
  let c = Registry.Counter.get ~registry:r "par_total" in
  let h = Registry.Histogram.get ~registry:r ~buckets:[| 10.0 |] "par_ms" in
  let worker () =
    for _ = 1 to 10_000 do
      Registry.Counter.inc c;
      Registry.Histogram.observe h 1.0
    done
  in
  let domains = List.init 4 (fun _ -> Domain.spawn worker) in
  List.iter Domain.join domains;
  Alcotest.(check int) "no lost counter increments" 40_000
    (Registry.Counter.value c);
  Alcotest.(check int) "no lost observations" 40_000 (Registry.Histogram.count h);
  Alcotest.(check (float 1e-6)) "no lost sum" 40_000.0 (Registry.Histogram.sum h)

(* --- spans over simulated time --- *)

let test_span_nesting_over_simtime () =
  let time = Simtime.create () in
  let r = fresh () in
  let ctx = Span.create ~registry:r ~clock:(fun () -> Simtime.now time) () in
  let outer = Span.enter ctx "attest.round" in
  Simtime.advance_by time 0.100;
  let inner = Span.enter ctx ~labels:[ ("scheme", "hmac_sha1") ] "anchor.mac" in
  Simtime.advance_by time 0.654;
  Span.exit ctx inner;
  Simtime.advance_by time 0.046;
  Span.exit ctx ~labels:[ ("result", "attested") ] outer;
  Alcotest.(check int) "balanced" 0 (Span.open_count ctx);
  match Span.finished ctx with
  | [ i; o ] ->
    (* completion order: the inner span finishes first *)
    Alcotest.(check string) "inner name" "anchor.mac" i.Span.f_name;
    Alcotest.(check int) "inner depth" 1 i.Span.f_depth;
    Alcotest.(check bool) "inner parent is outer" true
      (i.Span.f_parent = Some o.Span.f_id);
    Alcotest.(check (option string)) "parent name" (Some "attest.round")
      i.Span.f_parent_name;
    Alcotest.(check (float 1e-6)) "inner simulated ms" 654.0 (Span.duration_ms i);
    Alcotest.(check int) "outer depth" 0 o.Span.f_depth;
    Alcotest.(check (float 1e-6)) "outer simulated ms" 800.0 (Span.duration_ms o);
    Alcotest.(check bool) "exit labels appended" true
      (List.mem_assoc "result" o.Span.f_labels);
    (* every exit mirrors into the ra_span_ms{span=...} histogram *)
    let hist name =
      Registry.Histogram.get ~registry:r ~labels:[ ("span", name) ] "ra_span_ms"
    in
    Alcotest.(check int) "histogram mirror" 1
      (Registry.Histogram.count (hist "anchor.mac"));
    Alcotest.(check (float 1e-6)) "histogram sum is ms" 800.0
      (Registry.Histogram.sum (hist "attest.round"))
  | l -> Alcotest.failf "expected 2 finished spans, got %d" (List.length l)

let test_with_span_exception () =
  let ctx = Span.no_registry ~clock:(fun () -> 0.0) () in
  (try Span.with_span ctx "doomed" (fun () -> failwith "boom") with
  | Failure _ -> ());
  Alcotest.(check int) "closed on raise" 0 (Span.open_count ctx);
  match Span.finished ctx with
  | [ f ] ->
    Alcotest.(check (option string)) "outcome label" (Some "raised")
      (List.assoc_opt "outcome" f.Span.f_labels)
  | _ -> Alcotest.fail "expected one finished span"

(* --- JSON + JSONL sinks --- *)

let test_json_roundtrip () =
  let v =
    Json.Obj
      [
        ("s", Json.Str "quote \" slash \\ newline \n unicode \x01");
        ("n", Json.Num 1.5);
        ("i", Json.Num 42.0);
        ("arr", Json.Arr [ Json.Bool true; Json.Null; Json.Num (-0.25) ]);
        ("nested", Json.Obj [ ("k", Json.Str "") ]);
      ]
  in
  (match Json.of_string (Json.to_string v) with
  | Ok v' -> Alcotest.(check bool) "round-trip" true (v = v')
  | Error e -> Alcotest.failf "reparse failed: %s" e);
  (match Json.of_string "{\"a\": [1, 2" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "truncated input accepted");
  match Json.of_string "1 trailing" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "trailing garbage accepted"

let test_metrics_jsonl_roundtrip () =
  let r = fresh () in
  Registry.Counter.inc ~by:3
    (Registry.Counter.get ~registry:r ~labels:[ ("k", "v") ] "reqs_total");
  Registry.Histogram.observe
    (Registry.Histogram.get ~registry:r ~buckets:[| 1.0 |] "ms")
    0.5;
  match Export.parse_jsonl (Export.metrics_jsonl r) with
  | Error e -> Alcotest.failf "metrics jsonl unparseable: %s" e
  | Ok lines ->
    Alcotest.(check int) "one line per series" 2 (List.length lines);
    let counter =
      List.find
        (fun l -> Json.member "metric" l = Some (Json.Str "reqs_total"))
        lines
    in
    Alcotest.(check (option (float 0.0))) "value" (Some 3.0)
      (Option.bind (Json.member "value" counter) Json.as_float);
    Alcotest.(check (option string)) "labels" (Some "v")
      (Option.bind
         (Option.bind (Json.member "labels" counter) (Json.member "k"))
         Json.as_string);
    let histo =
      List.find (fun l -> Json.member "metric" l = Some (Json.Str "ms")) lines
    in
    (* the overflow bucket's bound is the string "+Inf", not null *)
    (match Json.member "buckets" histo with
    | Some (Json.Arr bs) ->
      Alcotest.(check bool) "+Inf bound encoded" true
        (List.exists (fun b -> Json.member "le" b = Some (Json.Str "+Inf")) bs)
    | _ -> Alcotest.fail "histogram line without buckets")

let test_spans_jsonl_roundtrip () =
  let now = ref 0.0 in
  let ctx = Span.no_registry ~clock:(fun () -> !now) () in
  Span.with_span ctx "outer" (fun () ->
      now := 0.25;
      Span.with_span ctx "inner" (fun () -> now := 1.0));
  match Export.parse_jsonl (Export.spans_jsonl ctx) with
  | Error e -> Alcotest.failf "spans jsonl unparseable: %s" e
  | Ok [ inner; outer ] ->
    Alcotest.(check (option string)) "inner first" (Some "inner")
      (Option.bind (Json.member "span" inner) Json.as_string);
    Alcotest.(check (option (float 1e-9))) "duration in ms" (Some 750.0)
      (Option.bind (Json.member "duration_ms" inner) Json.as_float);
    Alcotest.(check (option (float 1e-9))) "root parent is null" None
      (Option.bind (Json.member "parent" outer) Json.as_float)
  | Ok l -> Alcotest.failf "expected 2 span lines, got %d" (List.length l)

let test_prometheus_exposition () =
  let r = fresh () in
  Registry.Counter.inc ~by:2
    (Registry.Counter.get ~registry:r ~labels:[ ("scheme", "hmac_sha1") ] "ok_total");
  Registry.Gauge.set (Registry.Gauge.get ~registry:r "level") 0.5;
  let h = Registry.Histogram.get ~registry:r ~buckets:[| 1.0; 5.0 |] "lat_ms" in
  Registry.Histogram.observe h 0.5;
  Registry.Histogram.observe h 3.0;
  let text = Export.render_prometheus r in
  let has needle =
    Alcotest.(check bool) needle true
      (Ra_net.Trace.contains_substring ~needle text)
  in
  has "# TYPE ok_total counter";
  has "ok_total{scheme=\"hmac_sha1\"} 2";
  has "# TYPE level gauge";
  has "# TYPE lat_ms histogram";
  (* cumulative buckets: le="5" must include the le="1" observation *)
  has "lat_ms_bucket{le=\"1\"} 1";
  has "lat_ms_bucket{le=\"5\"} 2";
  has "lat_ms_bucket{le=\"+Inf\"} 2";
  has "lat_ms_sum 3.5";
  has "lat_ms_count 2"

(* --- hostile names: every sink must escape, none may emit raw control
   bytes --- *)

let hostile = "we\"ird\\name\nwith\ttab\rret\x01ctl end"

let test_hostile_names_escaped () =
  let r = fresh () in
  Registry.Counter.inc
    (Registry.Counter.get ~registry:r ~labels:[ ("name", hostile) ] "sym_total");
  (* Prometheus exposition: label values escape backslash, quote and
     newline; no control byte may survive raw *)
  let text = Export.render_prometheus r in
  Alcotest.(check bool) "backslash escaped" true
    (Ra_net.Trace.contains_substring ~needle:"we\\\"ird\\\\name" text);
  Alcotest.(check bool) "no raw control bytes in exposition" true
    (String.for_all (fun c -> c = '\n' || Char.code c >= 0x20) text);
  (* JSONL: the hostile value must round-trip exactly *)
  (match Export.parse_jsonl (Export.metrics_jsonl r) with
  | Error e -> Alcotest.failf "metrics jsonl unparseable: %s" e
  | Ok [ line ] ->
    Alcotest.(check (option string)) "label round-trips" (Some hostile)
      (Option.bind
         (Option.bind (Json.member "labels" line) (Json.member "name"))
         Json.as_string)
  | Ok l -> Alcotest.failf "expected 1 line, got %d" (List.length l));
  (* raw JSON: quotes, backslashes and control chars in strings *)
  match Json.of_string (Json.to_string (Json.Str hostile)) with
  | Ok (Json.Str s) -> Alcotest.(check string) "json string round-trips" hostile s
  | _ -> Alcotest.fail "hostile string did not survive JSON"

(* --- percentile vs the exact sorted-sample oracle --- *)

let qcheck_percentile_oracle =
  QCheck.Test.make ~name:"obs: percentile matches sorted-sample oracle"
    ~count:500
    QCheck.(
      triple
        (small_list (int_range 0 20))
        (small_list (int_range 1 19))
        (int_range 0 100))
    (fun (bound_ints, obs_ints, p_int) ->
      (* a fixed bound below every observation keeps the bounds non-empty
         (the registry rejects [||]) without masking overflow-to-+inf *)
      let bounds =
        List.sort_uniq compare (-1 :: bound_ints)
        |> List.map float_of_int
        |> Array.of_list
      in
      let obs = List.map float_of_int obs_ints in
      let p = float_of_int p_int in
      let r = fresh () in
      let h = Registry.Histogram.get ~registry:r ~buckets:bounds "oracle_ms" in
      List.iter (Registry.Histogram.observe h) obs;
      let got = Registry.Histogram.percentile h p in
      match obs with
      | [] -> Float.is_nan got
      | _ ->
        (* nearest-rank on the raw samples, then the answer a histogram
           can give: the smallest bucket bound at or above that sample,
           +inf when it overflows every bound *)
        let sorted = Array.of_list (List.sort compare obs) in
        let n = Array.length sorted in
        let rank =
          int_of_float (Float.max 1.0 (Float.ceil (p /. 100.0 *. float_of_int n)))
        in
        let x = sorted.(rank - 1) in
        let expected =
          match Array.find_opt (fun b -> x <= b) bounds with
          | Some b -> b
          | None -> infinity
        in
        got = expected)

(* --- fleet: sweep and sweep_par must produce identical metrics --- *)

let comparable snapshot =
  (* drop histogram float sums (accumulation order differs across domains)
     and keep everything integer-valued: counters, gauges, bucket counts *)
  List.map
    (fun (name, labels, sample) ->
      match sample with
      | Registry.Histogram_sample { hs_count; hs_buckets; _ } ->
        (name, labels, `Histogram (hs_count, hs_buckets))
      | Registry.Counter_sample v -> (name, labels, `Counter v)
      | Registry.Gauge_sample v -> (name, labels, `Gauge v))
    snapshot

let run_sweeps ~par () =
  Registry.reset Registry.default;
  let fleet = Ra_core.Fleet.create ~ram_size:2048 ~names:[ "a"; "b"; "c" ] () in
  for _ = 1 to 2 do
    Ra_core.Fleet.advance fleet ~seconds:5.0;
    ignore
      (if par then Ra_core.Fleet.sweep_par ~domains:3 fleet
       else Ra_core.Fleet.sweep fleet)
  done;
  ignore (Ra_core.Fleet.health_snapshot fleet);
  let snap = comparable (Registry.snapshot Registry.default) in
  Registry.reset Registry.default;
  snap

let test_sweep_par_metric_equality () =
  let seq = run_sweeps ~par:false () in
  let par = run_sweeps ~par:true () in
  Alcotest.(check int) "same series set" (List.length seq) (List.length par);
  List.iter2
    (fun (n1, l1, s1) (n2, l2, s2) ->
      Alcotest.(check string) "series name" n1 n2;
      Alcotest.(check bool) (n1 ^ " labels equal") true (l1 = l2);
      Alcotest.(check bool) (n1 ^ " sample equal") true (s1 = s2))
    seq par

let tests =
  [
    Alcotest.test_case "counter semantics" `Quick test_counter_semantics;
    Alcotest.test_case "label canonicalization" `Quick test_label_canonicalization;
    Alcotest.test_case "kind conflict" `Quick test_kind_conflict;
    Alcotest.test_case "gauge" `Quick test_gauge;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "reset keeps handles" `Quick test_reset_keeps_handles;
    Alcotest.test_case "domain safety" `Quick test_domain_safety;
    Alcotest.test_case "span nesting over simtime" `Quick
      test_span_nesting_over_simtime;
    Alcotest.test_case "with_span on exception" `Quick test_with_span_exception;
    Alcotest.test_case "json round-trip" `Quick test_json_roundtrip;
    Alcotest.test_case "metrics jsonl round-trip" `Quick
      test_metrics_jsonl_roundtrip;
    Alcotest.test_case "spans jsonl round-trip" `Quick test_spans_jsonl_roundtrip;
    Alcotest.test_case "prometheus exposition" `Quick test_prometheus_exposition;
    Alcotest.test_case "hostile names escaped" `Quick test_hostile_names_escaped;
    QCheck_alcotest.to_alcotest qcheck_percentile_oracle;
    Alcotest.test_case "sweep_par metric equality" `Quick
      test_sweep_par_metric_equality;
  ]
