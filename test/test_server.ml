(* The verifier-as-a-service: admission control, batched verification,
   open-loop load. *)
open Ra_core
module Simtime = Ra_net.Simtime
module Verdict = Ra_core.Verdict

let sym_key = "K_attest_0123456789." (* 20 bytes *)
let image = String.init 64 (fun i -> Char.chr (i * 3 mod 256))

let vcfg ?(reference_image = image) () =
  Verifier.Config.v ~sym_key ~reference_image ~time:(Simtime.create ()) ()

let config ?(batch = 4) ?(linger = 0.05) ?(deadline = 2.0) ?admission () =
  let base = Server.default_config (vcfg ()) in
  {
    base with
    Server.sc_batch = batch;
    sc_linger_s = linger;
    sc_deadline_s = deadline;
    sc_admission = Option.value admission ~default:base.Server.sc_admission;
  }

let make ?(record = true) ?batch ?linger ?deadline ?admission () =
  let sched = Sched.create () in
  let server =
    match
      Server.create ~record_outcomes:record ~sched
        (config ?batch ?linger ?deadline ?admission ())
    with
    | Ok s -> s
    | Error msg -> Alcotest.failf "Server.create: %s" msg
  in
  (sched, server)

let keyed = Auth.keyed sym_key

let good_frame ?(image = image) counter =
  let resp0 =
    {
      Message.echo_challenge = "";
      echo_freshness = Message.F_counter counter;
      report = "";
    }
  in
  let report =
    Auth.response_report_keyed ~keyed
      ~body:(Message.response_body resp0)
      ~memory_image:image
  in
  Message.wire_to_bytes (Message.Response { resp0 with report })

let forged_frame counter =
  let resp =
    {
      Message.echo_challenge = "";
      echo_freshness = Message.F_counter counter;
      report = String.make 20 '\xa5';
    }
  in
  Message.wire_to_bytes (Message.Response resp)

let rejections stats reason =
  match List.assoc_opt reason stats.Server.sv_breakdown with
  | Some n -> n
  | None -> 0

(* ---- token bucket ----------------------------------------------------- *)

let test_bucket_refill () =
  let b = Admission.Bucket.create ~rate:2.0 ~burst:4.0 in
  (* starts full *)
  Alcotest.(check (float 1e-9)) "full at birth" 4.0 (Admission.Bucket.tokens b ~now:0.0);
  for _ = 1 to 4 do
    Alcotest.(check bool) "take" true (Admission.Bucket.try_take b ~now:0.0)
  done;
  Alcotest.(check bool) "empty" false (Admission.Bucket.try_take b ~now:0.0);
  (* refill is proportional to elapsed simulated time *)
  Alcotest.(check bool) "0.25s: half a token" false
    (Admission.Bucket.try_take b ~now:0.25);
  Alcotest.(check bool) "0.5s boundary: exactly one" true
    (Admission.Bucket.try_take b ~now:0.5);
  Alcotest.(check bool) "and no more" false (Admission.Bucket.try_take b ~now:0.5);
  (* cap at burst after a long idle *)
  Alcotest.(check (float 1e-9)) "cap" 4.0 (Admission.Bucket.tokens b ~now:1000.0);
  (* time running backwards refills nothing *)
  let b2 = Admission.Bucket.create ~rate:1.0 ~burst:1.0 in
  Alcotest.(check bool) "take at t=10" true (Admission.Bucket.try_take b2 ~now:10.0);
  Alcotest.(check (float 1e-9)) "t=5 refills nothing" 0.0
    (Admission.Bucket.tokens b2 ~now:5.0)

let test_bucket_validation () =
  Alcotest.check_raises "rate 0" (Invalid_argument "Admission.Bucket.create: rate must be > 0")
    (fun () -> ignore (Admission.Bucket.create ~rate:0.0 ~burst:4.0));
  Alcotest.check_raises "burst < 1"
    (Invalid_argument "Admission.Bucket.create: burst must be >= 1") (fun () ->
      ignore (Admission.Bucket.create ~rate:1.0 ~burst:0.5))

(* ---- triage queue ------------------------------------------------------ *)

let triage_config =
  {
    Admission.device_rate = 100.0;
    device_burst = 100.0;
    unknown_rate = 100.0;
    unknown_burst = 100.0;
    triage_capacity = 8;
    unknown_share = 0.5;
  }

let test_triage_overflow () =
  let a = Admission.create ~config:triage_config () in
  Admission.register a "dev";
  (* unknowns may only fill their share: 4 of 8 slots *)
  for i = 1 to 4 do
    Alcotest.(check bool)
      (Printf.sprintf "unknown %d admitted" i)
      true
      (Admission.offer a ~identity:None ~now:0.0 i = Admission.Admitted)
  done;
  Alcotest.(check bool) "unknown over share" true
    (Admission.offer a ~identity:None ~now:0.0 5
    = Admission.Rejected Verdict.Reason.Queue_full);
  (* known fills the rest *)
  for i = 5 to 8 do
    Alcotest.(check bool)
      (Printf.sprintf "known %d admitted" i)
      true
      (Admission.offer a ~identity:(Some "dev") ~now:0.0 i = Admission.Admitted)
  done;
  Alcotest.(check int) "queue full" 8 (Admission.depth a);
  (* a known arrival at a full queue evicts the oldest unknown *)
  Alcotest.(check bool) "known evicts" true
    (Admission.offer a ~identity:(Some "dev") ~now:0.0 9 = Admission.Admitted);
  Alcotest.(check (list int)) "oldest unknown evicted" [ 1 ] (Admission.evicted a);
  Alcotest.(check int) "still full" 8 (Admission.depth a);
  Alcotest.(check int) "unknown depth down" 3 (Admission.unknown_depth a);
  (* drain order is FIFO over the survivors *)
  let drained = List.init 8 (fun _ -> Option.get (Admission.take a)) in
  Alcotest.(check (list int)) "fifo minus evicted" [ 2; 3; 4; 5; 6; 7; 8; 9 ] drained;
  Alcotest.(check bool) "empty" true (Admission.take a = None)

let test_unregistered_identity_is_unknown () =
  let a = Admission.create ~config:triage_config () in
  Admission.register a "real";
  Alcotest.(check bool) "registered is known" true (Admission.known a "real");
  Alcotest.(check bool) "claimed name is not" false (Admission.known a "fake");
  (* claimed-but-unregistered identities burn the shared unknown share *)
  for i = 1 to 4 do
    Alcotest.(check bool) "fake admitted to share" true
      (Admission.offer a ~identity:(Some (Printf.sprintf "fake%d" i)) ~now:0.0 i
      = Admission.Admitted)
  done;
  Alcotest.(check bool) "share exhausted" true
    (Admission.offer a ~identity:(Some "fake9") ~now:0.0 9
    = Admission.Rejected Verdict.Reason.Queue_full)

(* ---- server verdict paths --------------------------------------------- *)

let test_reason_paths () =
  let _sched, server = make ~batch:1 () in
  Server.register_device server "dev-0";
  let submit ?device ~tag frame =
    Server.submit server { Server.rq_device = device; rq_tag = tag; rq_frame = frame }
  in
  submit ~device:"dev-0" ~tag:1 (good_frame 1L);
  Server.flush server;
  submit ~device:"dev-0" ~tag:2 (good_frame 1L) (* replayed counter: pre-crypto *);
  submit ~device:"dev-0" ~tag:3 "not a frame";
  submit ~device:"dev-0" ~tag:4 (forged_frame 2L);
  Server.flush server;
  let st = Server.stats server in
  Alcotest.(check int) "requests" 4 st.Server.sv_requests;
  Alcotest.(check int) "trusted" 1 st.Server.sv_trusted;
  Alcotest.(check int) "stale" 1 (rejections st Verdict.Reason.Not_fresh);
  Alcotest.(check int) "malformed" 1 (rejections st Verdict.Reason.Malformed);
  Alcotest.(check int) "forged" 1 (rejections st Verdict.Reason.Untrusted_state);
  (* outcome log agrees, in completion order of the trusted one *)
  let results = List.map (fun o -> o.Server.oc_result) (Server.outcomes server) in
  Alcotest.(check int) "outcomes logged" 4 (List.length results);
  Alcotest.(check int) "one ok" 1
    (List.length (List.filter (fun r -> r = Ok ()) results))

let test_rate_limited () =
  let admission =
    { Admission.default_config with device_rate = 0.5; device_burst = 1.0 }
  in
  let _sched, server = make ~batch:64 ~admission () in
  Server.register_device server "dev-0";
  for i = 1 to 3 do
    Server.submit server
      {
        Server.rq_device = Some "dev-0";
        rq_tag = i;
        rq_frame = good_frame (Int64.of_int i);
      }
  done;
  let st = Server.stats server in
  Alcotest.(check int) "one token at t=0" 1 st.Server.sv_admitted;
  Alcotest.(check int) "rest rate-limited" 2
    (rejections st Verdict.Reason.Rate_limited)

let test_batch_equals_single () =
  (* the batched path and the per-report key-derivation path agree verdict
     for verdict *)
  let resps =
    List.init 8 (fun i ->
        let frame =
          if i mod 3 = 0 then forged_frame (Int64.of_int (i + 1))
          else good_frame (Int64.of_int (i + 1))
        in
        match Message.wire_of_bytes frame with
        | Some (Message.Response r) -> r
        | _ -> assert false)
  in
  let verifier =
    match Verifier.of_config (vcfg ()) with
    | Ok v -> v
    | Error m -> Alcotest.failf "of_config: %s" m
  in
  let batched = Server.Batch.verify verifier (Array.of_list resps) in
  List.iteri
    (fun i r ->
      let single = Server.Batch.verify_one ~sym_key ~reference_image:image r in
      Alcotest.(check bool)
        (Printf.sprintf "report %d agrees" i)
        true
        (batched.(i) = single))
    resps;
  Alcotest.(check int) "midstate saves the two pad compressions" 2
    Server.Batch.key_blocks

let test_deadline_timeout () =
  (* a report stuck behind a huge backlog times out instead of burning
     verification on a dead answer *)
  let sched, server = make ~batch:64 ~linger:10.0 ~deadline:0.5 () in
  Server.register_device server "dev-0";
  Server.submit server
    { Server.rq_device = Some "dev-0"; rq_tag = 1; rq_frame = good_frame 1L };
  (* nothing flushes until the linger timer at t=10 — past the deadline *)
  ignore (Sched.run sched);
  let st = Server.stats server in
  Alcotest.(check int) "timed out, not verified" 1
    (rejections st Verdict.Reason.Timed_out);
  Alcotest.(check int) "no verdicts" 0 st.Server.sv_trusted

let test_of_config_validation () =
  let sched = Sched.create () in
  let bad_key =
    Server.default_config (Verifier.Config.v ~sym_key:"short" ~time:(Simtime.create ()) ())
  in
  (match Server.create ~sched bad_key with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad sym_key must not construct");
  (match Server.create ~sched { (config ()) with Server.sc_batch = 0 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "batch 0 must not construct");
  match Server.create ~sched { (config ()) with Server.sc_block_s = 0.0 } with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "zero block time must not construct"

(* ---- open-loop load ---------------------------------------------------- *)

(* buckets sized above the per-device offered rate, so a quiet fleet is
   never throttled; the flood still hits the shared unknown bucket *)
let load_admission =
  { Admission.default_config with device_rate = 8.0; device_burst = 16.0 }

let load_config () =
  config ~batch:8 ~linger:0.05 ~deadline:5.0 ~admission:load_admission ()

let quiet_traffic =
  {
    Server.Load.default_traffic with
    Server.Load.tr_devices = 12;
    tr_rate = 2.0;
    tr_horizon_s = 10.0;
    tr_seed = 42L;
  }

let test_load_all_trusted () =
  let report, _ = Server.Load.run (load_config ()) quiet_traffic in
  Alcotest.(check bool) "some traffic" true (report.Server.Load.rp_requests > 100);
  Alcotest.(check int) "everything trusted"
    report.Server.Load.rp_requests report.Server.Load.rp_trusted;
  Alcotest.(check (list (pair Alcotest.reject Alcotest.int))) "no rejections" []
    (List.map (fun (r, n) -> (r, n)) report.Server.Load.rp_breakdown
    |> List.filter (fun (_, n) -> n > 0));
  Alcotest.(check bool) "p99 sane" true (report.Server.Load.rp_p99_ms > 0.0)

let test_flood_then_drain () =
  (* a 10x flood mid-run: goodput holds, drops land on the flood as
     admission rejections, and once it stops the server recovers *)
  let cfg = load_config () in
  let flood =
    {
      quiet_traffic with
      Server.Load.tr_flood_sources = 8;
      tr_flood_rate = 30.0;
    }
  in
  let base, _ = Server.Load.run cfg quiet_traffic in
  let attacked, outcomes = Server.Load.run ~record_outcomes:true cfg flood in
  let trusted_base = base.Server.Load.rp_trusted in
  let trusted_flood = attacked.Server.Load.rp_trusted in
  Alcotest.(check bool)
    (Printf.sprintf "goodput holds under flood (%d vs %d)" trusted_flood trusted_base)
    true
    (float_of_int trusted_flood >= 0.9 *. float_of_int trusted_base);
  (* the flood is turned away by admission, not by verification timeouts *)
  Alcotest.(check int) "no timeouts" 0
    (match List.assoc_opt Verdict.Reason.Timed_out attacked.Server.Load.rp_breakdown with
    | Some n -> n
    | None -> 0);
  let admission_drops =
    List.fold_left
      (fun acc (r, n) ->
        if r = Verdict.Reason.Rate_limited || r = Verdict.Reason.Queue_full then
          acc + n
        else acc)
      0 attacked.Server.Load.rp_breakdown
  in
  Alcotest.(check bool) "flood drops attributed to admission" true
    (admission_drops > 0);
  (* every anonymous (flood) outcome was rejected; authenticated outcomes
     recover after the flood: the last authenticated outcome is trusted *)
  let flood_ok =
    List.exists
      (fun o -> o.Server.oc_device = None && o.Server.oc_result = Ok ())
      outcomes
  in
  Alcotest.(check bool) "no forged report ever trusted" false flood_ok

let test_bursty_arrivals_average_out () =
  let bursty =
    { quiet_traffic with Server.Load.tr_process = `Bursty; tr_horizon_s = 50.0 }
  in
  let report, _ = Server.Load.run (load_config ()) bursty in
  let expected =
    float_of_int bursty.Server.Load.tr_devices
    *. bursty.Server.Load.tr_rate *. bursty.Server.Load.tr_horizon_s
  in
  let got = float_of_int report.Server.Load.rp_requests in
  Alcotest.(check bool)
    (Printf.sprintf "long-run rate calibrated (got %.0f, expected %.0f)" got expected)
    true
    (Float.abs (got -. expected) /. expected < 0.25)

(* ---- determinism across shard counts ----------------------------------- *)

let per_device_outcomes outcomes =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun o ->
      match o.Server.oc_device with
      | Some d ->
        let prev = Option.value (Hashtbl.find_opt tbl d) ~default:[] in
        Hashtbl.replace tbl d ((o.Server.oc_tag, o.Server.oc_result) :: prev)
      | None -> ())
    outcomes;
  Hashtbl.fold
    (fun d l acc -> (d, List.sort compare l) :: acc)
    tbl []
  |> List.sort compare

let qcheck_shard_determinism =
  QCheck.Test.make ~count:8 ~name:"admitted ordering is shard-count independent"
    QCheck.(pair (int_range 1 6) (int_range 1 5))
    (fun (shards, seed) ->
      let traffic =
        {
          quiet_traffic with
          Server.Load.tr_devices = 10;
          tr_rate = 1.0;
          tr_horizon_s = 6.0;
          tr_seed = Int64.of_int (seed * 1009);
        }
      in
      let cfg = load_config () in
      let _, seq = Server.Load.run ~engine:`Seq ~record_outcomes:true cfg traffic in
      let _, sh =
        Server.Load.run ~engine:(`Shards shards) ~record_outcomes:true cfg traffic
      in
      per_device_outcomes seq = per_device_outcomes sh)

let test_shard_merge_totals () =
  let cfg = load_config () in
  let a, _ = Server.Load.run ~engine:`Seq cfg quiet_traffic in
  let b, _ = Server.Load.run ~engine:(`Shards 4) cfg quiet_traffic in
  Alcotest.(check int) "requests merge" a.Server.Load.rp_requests
    b.Server.Load.rp_requests;
  Alcotest.(check int) "trusted merge" a.Server.Load.rp_trusted
    b.Server.Load.rp_trusted

(* ---- observability ----------------------------------------------------- *)

let test_breakdown_labels_agree () =
  (* the server-side and service-side rejection breakdowns speak the same
     Prometheus label values *)
  List.iter
    (fun r ->
      let label = Verdict.Reason.label r in
      Alcotest.(check bool)
        (Printf.sprintf "label %s is lower_snake" label)
        true
        (String.for_all (fun c -> (c >= 'a' && c <= 'z') || c = '_') label))
    Verdict.Reason.all;
  (* shared constructors match Verdict.label exactly *)
  List.iter
    (fun (v, r) ->
      Alcotest.(check string) "shared label" (Verdict.label v) (Verdict.Reason.label r))
    [
      (Verdict.Untrusted_state, Verdict.Reason.Untrusted_state);
      (Verdict.Invalid_response, Verdict.Reason.Invalid_response);
      (Verdict.Bad_auth, Verdict.Reason.Bad_auth);
    ]

let test_publish_and_slo () =
  let registry = Ra_obs.Registry.create () in
  let _sched, server = make ~batch:1 () in
  Server.register_device server "dev-0";
  Server.submit server
    { Server.rq_device = Some "dev-0"; rq_tag = 1; rq_frame = good_frame 1L };
  Server.flush server;
  Server.submit server
    { Server.rq_device = Some "dev-0"; rq_tag = 2; rq_frame = forged_frame 2L };
  Server.flush server;
  Server.publish ~registry server;
  let counter ?labels name =
    Ra_obs.Registry.Counter.value (Ra_obs.Registry.Counter.get ~registry ?labels name)
  in
  Alcotest.(check int) "requests counter" 2 (counter "ra_server_requests_total");
  Alcotest.(check int) "rejection label" 1
    (counter ~labels:[ ("reason", "untrusted_state") ] "ra_server_rejections_total");
  Alcotest.(check int) "trusted verdicts" 1
    (counter ~labels:[ ("verdict", "trusted") ] "ra_server_verdicts_total");
  (* SLO wiring *)
  let report, _ = Server.Load.run (load_config ()) quiet_traffic in
  let checks = Server.Load.slo_watch ~max_p99_ms:10_000.0 report in
  Alcotest.(check int) "two objectives" 2 (List.length checks);
  Alcotest.(check int) "no breaches at generous limits" 0
    (List.length (Ra_obs.Slo.breaches checks));
  let tight = Server.Load.slo_watch ~max_p99_ms:0.0001 report in
  Alcotest.(check int) "tight p99 breaches" 1
    (List.length (Ra_obs.Slo.breaches tight))

let tests =
  [
    Alcotest.test_case "bucket refill at time boundaries" `Quick test_bucket_refill;
    Alcotest.test_case "bucket validation" `Quick test_bucket_validation;
    Alcotest.test_case "triage overflow and eviction" `Quick test_triage_overflow;
    Alcotest.test_case "unregistered identity is unknown-class" `Quick
      test_unregistered_identity_is_unknown;
    Alcotest.test_case "rejection reason paths" `Quick test_reason_paths;
    Alcotest.test_case "rate limiting" `Quick test_rate_limited;
    Alcotest.test_case "batch verdicts equal single" `Quick test_batch_equals_single;
    Alcotest.test_case "deadline timeout before crypto" `Quick test_deadline_timeout;
    Alcotest.test_case "config validation as Result" `Quick test_of_config_validation;
    Alcotest.test_case "open-loop load, quiet fleet" `Quick test_load_all_trusted;
    Alcotest.test_case "flood then drain" `Quick test_flood_then_drain;
    Alcotest.test_case "bursty arrivals keep the long-run rate" `Quick
      test_bursty_arrivals_average_out;
    QCheck_alcotest.to_alcotest qcheck_shard_determinism;
    Alcotest.test_case "shard merge totals" `Quick test_shard_merge_totals;
    Alcotest.test_case "breakdown labels agree across sides" `Quick
      test_breakdown_labels_agree;
    Alcotest.test_case "publish and SLO wiring" `Quick test_publish_and_slo;
  ]
