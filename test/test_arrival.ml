(* Open-loop arrival processes: determinism, monotonicity, calibration. *)
module Arrival = Ra_net.Arrival

let collect t ~until =
  let rec go acc =
    let at = Arrival.next t in
    if at < until then go (at :: acc) else List.rev acc
  in
  go []

let test_deterministic () =
  let mk () = Arrival.create ~seed:99L (Arrival.Poisson { rate = 5.0 }) in
  Alcotest.(check (list (float 0.0)))
    "same seed, same stream"
    (collect (mk ()) ~until:20.0)
    (collect (mk ()) ~until:20.0);
  let other = Arrival.create ~seed:100L (Arrival.Poisson { rate = 5.0 }) in
  Alcotest.(check bool) "different seed, different stream" false
    (collect (mk ()) ~until:20.0 = collect other ~until:20.0)

let test_strictly_increasing () =
  let t = Arrival.create ~seed:3L (Arrival.bursty ~rate:50.0 ()) in
  let prev = ref neg_infinity in
  for _ = 1 to 10_000 do
    let at = Arrival.next t in
    Alcotest.(check bool) "strictly increasing" true (at > !prev);
    prev := at
  done

let test_peek () =
  let t = Arrival.create ~seed:1L (Arrival.Poisson { rate = 1.0 }) in
  let p = Arrival.peek t in
  Alcotest.(check (float 0.0)) "peek = next" p (Arrival.next t);
  Alcotest.(check bool) "peek advanced" true (Arrival.peek t > p)

let test_start_offset () =
  let t = Arrival.create ~start:100.0 ~seed:1L (Arrival.Poisson { rate = 1.0 }) in
  Alcotest.(check bool) "first arrival after start" true (Arrival.peek t > 100.0)

let rate_over t ~until =
  float_of_int (List.length (collect t ~until)) /. until

let test_poisson_rate () =
  let t = Arrival.create ~seed:7L (Arrival.Poisson { rate = 20.0 }) in
  let got = rate_over t ~until:500.0 in
  Alcotest.(check bool)
    (Printf.sprintf "empirical rate %.2f near 20" got)
    true
    (Float.abs (got -. 20.0) /. 20.0 < 0.1)

let test_bursty_long_run_rate () =
  (* the Gilbert–Elliott modulation must not change the long-run average *)
  let t = Arrival.create ~seed:11L (Arrival.bursty ~rate:20.0 ()) in
  let got = rate_over t ~until:2000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "calibrated long-run rate %.2f near 20" got)
    true
    (Float.abs (got -. 20.0) /. 20.0 < 0.1)

let test_bursty_is_burstier () =
  (* dispersion test: over fixed windows, burst arrivals have a higher
     variance-to-mean ratio than Poisson (which has ~1) *)
  let window_counts t ~windows ~width =
    let counts = Array.make windows 0 in
    let rec go () =
      let at = Arrival.next t in
      let w = int_of_float (at /. width) in
      if w < windows then begin
        counts.(w) <- counts.(w) + 1;
        go ()
      end
    in
    go ();
    counts
  in
  let dispersion counts =
    let n = float_of_int (Array.length counts) in
    let mean = Array.fold_left (fun a c -> a +. float_of_int c) 0.0 counts /. n in
    let var =
      Array.fold_left
        (fun a c ->
          let d = float_of_int c -. mean in
          a +. (d *. d))
        0.0 counts
      /. n
    in
    var /. mean
  in
  let poisson =
    window_counts
      (Arrival.create ~seed:5L (Arrival.Poisson { rate = 20.0 }))
      ~windows:500 ~width:1.0
  in
  let bursty =
    window_counts
      (Arrival.create ~seed:5L (Arrival.bursty ~rate:20.0 ()))
      ~windows:500 ~width:1.0
  in
  let dp = dispersion poisson and db = dispersion bursty in
  Alcotest.(check bool)
    (Printf.sprintf "bursty dispersion %.2f > poisson %.2f" db dp)
    true (db > dp *. 1.5)

let test_validation () =
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Arrival.create: rate must be > 0") (fun () ->
      ignore (Arrival.create ~seed:1L (Arrival.Poisson { rate = 0.0 })));
  Alcotest.check_raises "bursty factor < 1"
    (Invalid_argument "Arrival.bursty: burst_factor must be >= 1") (fun () ->
      ignore (Arrival.bursty ~burst_factor:0.5 ~rate:1.0 ()));
  Alcotest.check_raises "bad probability"
    (Invalid_argument "Arrival.create: p_quiet_to_burst must be in (0, 1]")
    (fun () ->
      ignore
        (Arrival.create ~seed:1L
           (Arrival.Bursty
              {
                rate = 1.0;
                burst_factor = 8.0;
                p_quiet_to_burst = 0.0;
                p_burst_to_quiet = 0.5;
              })))

let tests =
  [
    Alcotest.test_case "deterministic from seed" `Quick test_deterministic;
    Alcotest.test_case "strictly increasing" `Quick test_strictly_increasing;
    Alcotest.test_case "peek" `Quick test_peek;
    Alcotest.test_case "start offset" `Quick test_start_offset;
    Alcotest.test_case "poisson empirical rate" `Quick test_poisson_rate;
    Alcotest.test_case "bursty long-run rate calibrated" `Quick
      test_bursty_long_run_rate;
    Alcotest.test_case "bursty has higher dispersion" `Quick test_bursty_is_burstier;
    Alcotest.test_case "validation" `Quick test_validation;
  ]
