(* ra_cli: command-line front end for the prover-side attestation
   library.

     ra_cli attest  --spec trustlite-base --rounds 3 --ram-kb 64
     ra_cli attack  --scenario roam-clock --defended
     ra_cli costs
     ra_cli table2

   The heavy lifting lives in the libraries; this binary is argument
   parsing and printing. *)

open Cmdliner
open Ra_core
module Device = Ra_mcu.Device
module Timing = Ra_mcu.Timing
module Energy = Ra_mcu.Energy

let spec_of_name name =
  List.find_opt (fun s -> s.Architecture.spec_name = name) Architecture.all_specs

let spec_names =
  String.concat ", " (List.map (fun s -> s.Architecture.spec_name) Architecture.all_specs)

(* ---- attest ---- *)

let run_attest spec_name rounds ram_kb =
  match spec_of_name spec_name with
  | None ->
    Printf.eprintf "unknown spec %s (available: %s)\n" spec_name spec_names;
    1
  | Some spec ->
    let session = Session.create ~spec ~ram_size:(ram_kb * 1024) () in
    Session.advance_time session ~seconds:1.0;
    Printf.printf "spec: %s, attested memory: %d KB\n\n" spec_name ram_kb;
    for i = 1 to rounds do
      Session.advance_time session ~seconds:1.0;
      let r = Session.attest_round_r session in
      Format.printf "round %d: %a (%d attempt%s, %.3f s)@." i Verdict.pp
        r.Session.r_verdict r.Session.r_attempts
        (if r.Session.r_attempts = 1 then "" else "s")
        r.Session.r_elapsed_s
    done;
    let device = Session.device session in
    Printf.printf "\nprover work: %.3f ms, energy: %.6f J\n"
      (Timing.ms_of_cycles (Ra_mcu.Cpu.work_cycles (Device.cpu device)))
      (Energy.consumed_joules (Device.energy device));
    0

let attest_cmd =
  let spec =
    Arg.(value & opt string "trustlite-base" & info [ "spec" ] ~docv:"SPEC"
           ~doc:(Printf.sprintf "Architecture: %s." spec_names))
  in
  let rounds = Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"N" ~doc:"Rounds to run.") in
  let ram = Arg.(value & opt int 64 & info [ "ram-kb" ] ~docv:"KB" ~doc:"Attested RAM size.") in
  Cmd.v (Cmd.info "attest" ~doc:"Run benign attestation rounds against a prover")
    Term.(const run_attest $ spec $ rounds $ ram)

(* ---- attack ---- *)

let scenarios =
  [
    ("roam-counter", fun defended -> Experiment.roam_counter_rollback ~defended);
    ("roam-clock", fun defended -> Experiment.roam_clock_rollback ~defended);
    ("roam-clock-hw", fun _ -> Experiment.roam_clock_rollback_hw ());
    ("roam-idt", fun defended -> Experiment.roam_idt_freeze ~defended);
    ("roam-key", fun defended -> Experiment.roam_key_extraction ~defended);
    ("roam-lockdown", fun defended -> Experiment.roam_mpu_lockdown ~defended);
  ]

let run_attack scenario defended =
  if scenario = "all" then begin
    List.iter (fun o -> Format.printf "%a@." Experiment.pp_roam_outcome o)
      (Experiment.roaming_matrix ());
    0
  end
  else
    match List.assoc_opt scenario scenarios with
    | Some f ->
      Format.printf "%a@." Experiment.pp_roam_outcome (f defended);
      0
    | None ->
      Printf.eprintf "unknown scenario %s (available: all, %s)\n" scenario
        (String.concat ", " (List.map fst scenarios));
      1

let attack_cmd =
  let scenario =
    Arg.(value & opt string "all" & info [ "scenario" ] ~docv:"NAME"
           ~doc:"Attack scenario (or 'all').")
  in
  let defended =
    Arg.(value & flag & info [ "defended" ] ~doc:"Run with the protection in place.")
  in
  Cmd.v (Cmd.info "attack" ~doc:"Run a roaming-adversary scenario")
    Term.(const run_attack $ scenario $ defended)

(* ---- table2 ---- *)

let run_table2 () =
  let matrix = Experiment.table2 () in
  Printf.printf "%-10s %-10s %-10s %-12s\n" "attack" "nonces" "counter" "timestamps";
  List.iter
    (fun (attack, cells) ->
      Printf.printf "%-10s" (Experiment.attack_name attack);
      List.iter
        (fun (_, ok) -> Printf.printf " %-10s" (if ok then "mitigated" else "-"))
        cells;
      Printf.printf "\n")
    matrix;
  Printf.printf "matches paper: %b\n" (matrix = Experiment.expected_table2);
  0

let table2_cmd =
  Cmd.v (Cmd.info "table2" ~doc:"Regenerate Table 2 by simulation")
    Term.(const run_table2 $ const ())

(* ---- costs ---- *)

let run_costs () =
  let open Ra_hwcost in
  Format.printf "baseline: %a@." Synthesis.pp_totals Synthesis.baseline;
  List.iter
    (fun o -> Format.printf "%a@." Synthesis.pp_overhead o)
    [ Synthesis.upgrade_64bit_clock; Synthesis.upgrade_32bit_clock; Synthesis.upgrade_sw_clock ];
  0

let costs_cmd =
  Cmd.v (Cmd.info "costs" ~doc:"Hardware cost of prover protection (Table 3 / §6.3)")
    Term.(const run_costs $ const ())

(* ---- auth-cost ---- *)

let run_auth_cost () =
  Printf.printf "%-24s %14s %16s\n" "scheme" "cold (ms)" "precomputed (ms)";
  List.iter
    (fun scheme ->
      Printf.printf "%-24s %14.3f %16.3f\n"
        (Format.asprintf "%a" Timing.pp_auth_scheme scheme)
        (Timing.request_auth_ms scheme)
        (Timing.request_auth_ms ~precomputed_key_schedule:true scheme))
    [ Timing.Auth_hmac_sha1; Timing.Auth_aes128_cbc_mac; Timing.Auth_speck64_cbc_mac;
      Timing.Auth_ecdsa_verify ];
  0

let auth_cost_cmd =
  Cmd.v (Cmd.info "auth-cost" ~doc:"Request-authentication cost comparison (§4.1)")
    Term.(const run_auth_cost $ const ())

(* ---- fleet ---- *)

let run_fleet n sweeps =
  if n < 1 || n > 1000 then begin
    Printf.eprintf "fleet size must be 1..1000\n";
    1
  end
  else begin
    let names = List.init n (Printf.sprintf "device-%02d") in
    let fleet = Fleet.create ~ram_size:4096 ~names () in
    for s = 1 to sweeps do
      Fleet.advance fleet ~seconds:10.0;
      let _ = Fleet.sweep fleet in
      Printf.printf "sweep %d done\n" s
    done;
    Printf.printf "%-12s %-12s %s\n" "device" "health" "sweeps";
    List.iter
      (fun (name, health, sweeps) ->
        Format.printf "%-12s %-12s %d@." name
          (Format.asprintf "%a" Fleet.pp_health health)
          sweeps)
      (Fleet.summary fleet);
    0
  end

let fleet_cmd =
  let n = Arg.(value & opt int 5 & info [ "size" ] ~docv:"N" ~doc:"Fleet size.") in
  let sweeps = Arg.(value & opt int 2 & info [ "sweeps" ] ~docv:"S" ~doc:"Sweeps to run.") in
  Cmd.v (Cmd.info "fleet" ~doc:"Sweep a fleet of provers (future work 1)")
    Term.(const run_fleet $ n $ sweeps)

(* ---- lattice ---- *)

let run_lattice () =
  let ok = ref 0 in
  List.iter
    (fun (config, _predicted, observed, agree) ->
      if agree then incr ok;
      Format.printf "%-36s %-42s %s@."
        (Format.asprintf "%a" Analysis.pp_config config)
        (Format.asprintf "%a" Analysis.pp_exposure observed)
        (if agree then "ok" else "MISMATCH"))
    (Analysis.exhaustive_check ());
  Printf.printf "%d/16 lattice points agree with the paper's argument\n" !ok;
  if !ok = 16 then 0 else 1

let lattice_cmd =
  Cmd.v (Cmd.info "lattice" ~doc:"Exhaustive protection-lattice check (§5/§6.2)")
    Term.(const run_lattice $ const ())

(* ---- inspect ---- *)

let run_inspect spec_name =
  match spec_of_name spec_name with
  | None ->
    Printf.eprintf "unknown spec %s (available: %s)\n" spec_name spec_names;
    1
  | Some spec ->
    let session = Session.create ~spec ~ram_size:(16 * 1024) () in
    Session.advance_time session ~seconds:5.0;
    let _ = Session.attest_round session in
    print_string (Ra_mcu.Hexdump.device_report (Session.device session));
    Printf.printf "\nfirst 64 bytes of attested RAM:\n%s"
      (Ra_mcu.Hexdump.dump
         (Device.memory (Session.device session))
         ~addr:(Device.attested_base (Session.device session))
         ~len:64);
    0

let inspect_cmd =
  let spec =
    Arg.(value & opt string "trustlite-sw-clock" & info [ "spec" ] ~docv:"SPEC"
           ~doc:(Printf.sprintf "Architecture: %s." spec_names))
  in
  Cmd.v (Cmd.info "inspect" ~doc:"Print a device-state report after one round")
    Term.(const run_inspect $ spec)

(* ---- stats ---- *)

let run_stats n sweeps selftest =
  if n < 1 || n > 1000 then begin
    Printf.eprintf "fleet size must be 1..1000\n";
    1
  end
  else begin
    let names = List.init n (Printf.sprintf "device-%02d") in
    let fleet = Fleet.create ~ram_size:4096 ~names () in
    for _ = 1 to sweeps do
      Fleet.advance fleet ~seconds:10.0;
      ignore (Fleet.sweep fleet)
    done;
    (* exercise the service path, including both rejection reasons, on
       the first member so the rejection-breakdown counters are live *)
    let first = Fleet.member_session (List.hd (Fleet.members fleet)) in
    let service_ok = Session.service_round first Service.Ping in
    let svc = Session.service first in
    let scheme = Verifier.scheme (Session.verifier first) in
    let forged =
      Service.make_request ~sym_key:(String.make 20 'x') ~scheme
        ~freshness:(Message.F_counter 99L) Service.Ping
    in
    let bad_auth_seen =
      match Service.handle_r svc forged with
      | Error Verdict.Bad_auth -> true
      | Ok _ | Error _ -> false
    in
    let stale =
      Service.make_request ~sym_key:(Session.sym_key first) ~scheme
        ~freshness:(Message.F_counter 0L) Service.Ping
    in
    let not_fresh_seen =
      match Service.handle_r svc stale with
      | Error (Verdict.Not_fresh _) -> true
      | Ok _ | Error _ -> false
    in
    let snapshot = Fleet.health_snapshot fleet in
    print_string (Fleet.render_health snapshot);
    print_newline ();
    let exposition = Ra_obs.Export.render_prometheus Ra_obs.Registry.default in
    print_string exposition;
    if not selftest then 0
    else begin
      let failures = ref [] in
      let check name ok = if not ok then failures := name :: !failures in
      let has family = Ra_net.Trace.contains_substring ~needle:family exposition in
      List.iter
        (fun family -> check ("exposition family " ^ family) (has family))
        [
          "ra_attest_requests_total";
          "ra_auth_verifications_total{";
          "ra_channel_sent_total{";
          "ra_channel_delivered_total{";
          "ra_fleet_sweep_latency_ms_bucket{";
          "ra_fleet_members{";
          "ra_service_invocations_total";
          "ra_service_rejections_total{";
          "ra_verifier_verdicts_total{";
          "ra_span_ms_bucket{";
          "ra_device_cycles{";
        ];
      check "service round acknowledged" service_ok;
      check "bad-auth rejection observed" bad_auth_seen;
      check "not-fresh rejection observed" not_fresh_seen;
      check "metrics JSONL parses"
        (match Ra_obs.Export.parse_jsonl
                 (Ra_obs.Export.metrics_jsonl Ra_obs.Registry.default)
         with
        | Ok (_ :: _) -> true
        | Ok [] | Error _ -> false);
      check "spans JSONL parses"
        (match Ra_obs.Export.parse_jsonl
                 (Ra_obs.Export.spans_jsonl (Ra_net.Trace.spans (Session.trace first)))
         with
        | Ok (_ :: _) -> true
        | Ok [] | Error _ -> false);
      List.iter
        (fun m ->
          check
            (Printf.sprintf "spans balanced on %s" (Fleet.member_name m))
            (Ra_obs.Span.open_count
               (Ra_net.Trace.spans (Session.trace (Fleet.member_session m)))
            = 0))
        (Fleet.members fleet);
      check "trusted verdict count"
        (Ra_obs.Registry.Counter.value
           (Ra_obs.Registry.Counter.get ~labels:[ ("verdict", "trusted") ]
              "ra_verifier_verdicts_total")
        = n * sweeps);
      check "rejection breakdown totals"
        (let s = Service.stats svc in
         Service.rejected s Verdict.Reason.Bad_auth = 1
         && Service.rejected s Verdict.Reason.Not_fresh = 1
         && Service.rejections s = 2);
      match !failures with
      | [] ->
        print_endline "selftest ok";
        0
      | fs ->
        List.iter (fun f -> Printf.eprintf "selftest FAILED: %s\n" f) (List.rev fs);
        1
    end
  end

let stats_cmd =
  let n = Arg.(value & opt int 4 & info [ "size" ] ~docv:"N" ~doc:"Fleet size.") in
  let sweeps = Arg.(value & opt int 2 & info [ "sweeps" ] ~docv:"S" ~doc:"Sweeps to run.") in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Verify the exposition, JSONL sinks and counters; non-zero exit on failure.")
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Sweep a small fleet and print its health snapshot and Prometheus metrics")
    Term.(const run_stats $ n $ sweeps $ selftest)

(* ---- chaos ---- *)

let run_chaos n rounds loss selftest =
  if n < 1 || n > 1000 then begin
    Printf.eprintf "fleet size must be 1..1000\n";
    1
  end
  else if not (loss >= 0.0 && loss < 1.0) then begin
    Printf.eprintf "loss must be in [0, 1)\n";
    1
  end
  else begin
    let names = List.init n (Printf.sprintf "device-%02d") in
    let fleet = Fleet.create ~ram_size:4096 ~names () in
    let losses = if loss > 0.0 then [ 0.0; loss ] else [ 0.0; 0.2 ] in
    let policies = [ ("no-retry", Retry.no_retry); ("default", Retry.default) ] in
    let grid = Fleet.chaos_sweep ~rounds_per_member:rounds ~losses ~policies fleet in
    let snapshot = Fleet.health_snapshot fleet in
    print_string (Fleet.render_health snapshot);
    if not selftest then 0
    else begin
      let failures = ref [] in
      let check name ok = if not ok then failures := name :: !failures in
      let exposition = Ra_obs.Export.render_prometheus Ra_obs.Registry.default in
      let has family = Ra_net.Trace.contains_substring ~needle:family exposition in
      List.iter
        (fun family -> check ("exposition family " ^ family) (has family))
        [
          "ra_channel_impairments_total{";
          "ra_chaos_rounds_total{";
          "ra_chaos_round_time_ms_bucket{";
          "ra_session_rounds_total{";
        ];
      let cell l p =
        List.find_opt
          (fun c -> c.Fleet.c_loss = l && c.Fleet.c_policy = p)
          grid
      in
      check "pristine wire converges 100%"
        (match cell 0.0 "default" with
        | Some c -> Fleet.convergence_pct c = 100.0 && c.Fleet.c_mean_attempts = 1.0
        | None -> false);
      check "lossy wire converges >= 99% under default backoff"
        (match cell (List.nth losses 1) "default" with
        | Some c -> Fleet.convergence_pct c >= 99.0
        | None -> false);
      check "retry engine actually retries on a lossy wire"
        (match cell (List.nth losses 1) "default" with
        | Some c -> c.Fleet.c_mean_attempts > 1.0
        | None -> false);
      (* verdict JSON round-trips through the obs sink *)
      let verdicts =
        [
          Verdict.Trusted;
          Verdict.Untrusted_state;
          Verdict.Invalid_response;
          Verdict.Bad_auth;
          Verdict.Not_fresh (Verdict.Stale_counter { got = 5L; stored = 9L });
          Verdict.Fault { fault_addr = 0x123; fault_code = "rom_attest" };
          Verdict.Timed_out { attempts = 8; waited_s = 42.5 };
        ]
      in
      check "verdicts round-trip through JSON"
        (List.for_all
           (fun v ->
             match
               Ra_obs.Json.of_string (Ra_obs.Json.to_string (Verdict.to_json v))
             with
             | Ok j -> Verdict.of_json j = Some v
             | Error _ -> false)
           verdicts);
      check "snapshot carries the chaos grid" (snapshot.Fleet.s_chaos = grid);
      match !failures with
      | [] ->
        print_endline "chaos selftest ok";
        0
      | fs ->
        List.iter (fun f -> Printf.eprintf "chaos selftest FAILED: %s\n" f) (List.rev fs);
        1
    end
  end

let chaos_cmd =
  let n = Arg.(value & opt int 4 & info [ "size" ] ~docv:"N" ~doc:"Fleet size.") in
  let rounds =
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds per member per cell.")
  in
  let loss =
    Arg.(value & opt float 0.2 & info [ "loss" ] ~docv:"P"
           ~doc:"Per-direction loss probability for the lossy cells.")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Verify convergence targets, verdict JSON round-trips and the new \
                 metric families; non-zero exit on failure.")
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"Sweep loss rates x backoff policies over an impaired fleet")
    Term.(const run_chaos $ n $ rounds $ loss $ selftest)

(* ---- trace ---- *)

let run_trace n rounds loss out selftest =
  if n < 1 || n > 1000 then begin
    Printf.eprintf "fleet size must be 1..1000\n";
    1
  end
  else if not (loss >= 0.0 && loss < 1.0) then begin
    Printf.eprintf "loss must be in [0, 1)\n";
    1
  end
  else begin
    let names = List.init n (Printf.sprintf "device-%02d") in
    let fleet = Fleet.create ~ram_size:4096 ~names () in
    Fleet.enable_tracing fleet;
    let policies = [ ("default", Retry.default) ] in
    let grid =
      Fleet.chaos_sweep ~rounds_per_member:rounds ~losses:[ loss ] ~policies fleet
    in
    let recorded = Fleet.recent_rounds fleet in
    let perfetto = Ra_obs.Export.perfetto_string recorded in
    (match out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc perfetto;
      close_out oc;
      Printf.printf "wrote %s (%d bytes) — load it at ui.perfetto.dev or chrome://tracing\n"
        path (String.length perfetto));
    let events = List.fold_left (fun acc r -> acc + List.length r.Ra_obs.Trace.rd_events) 0 recorded in
    Printf.printf "chaos cell: loss=%.0f%% policy=default, %d members x %d rounds\n"
      (100.0 *. loss) n rounds;
    Printf.printf "flight recorder: %d rounds, %d events, %d distinct trace ids\n"
      (List.length recorded) events
      (List.length
         (List.sort_uniq compare
            (List.map (fun r -> (r.Ra_obs.Trace.rd_device, r.Ra_obs.Trace.rd_trace_id)) recorded)));
    let checks = Fleet.slo_watch fleet in
    List.iter (fun c -> Format.printf "slo: %a@." Ra_obs.Slo.pp_check c) checks;
    if not selftest then 0
    else begin
      let failures = ref [] in
      let check name ok = if not ok then failures := name :: !failures in
      (* --- every recorded round is a well-formed causal tree --- *)
      check "all rounds recorded" (List.length recorded = n * rounds);
      let well_formed (r : Ra_obs.Trace.round) =
        let ids = List.map (fun e -> e.Ra_obs.Trace.ev_id) r.Ra_obs.Trace.rd_events in
        let id_set = List.sort_uniq compare ids in
        List.length id_set = List.length ids
        && (match r.Ra_obs.Trace.rd_events with
           | root :: _ ->
             root.Ra_obs.Trace.ev_id = 0
             && root.Ra_obs.Trace.ev_name = Ra_obs.Trace.root_span_name
             && root.Ra_obs.Trace.ev_parent = None
           | [] -> false)
        && List.for_all
             (fun (e : Ra_obs.Trace.event) ->
               match e.Ra_obs.Trace.ev_parent with
               | None -> e.Ra_obs.Trace.ev_id = 0
               | Some p -> List.mem p ids)
             r.Ra_obs.Trace.rd_events
      in
      check "rounds are well-formed causal trees" (List.for_all well_formed recorded);
      let count_named name r =
        List.length
          (List.filter
             (fun (e : Ra_obs.Trace.event) -> e.Ra_obs.Trace.ev_name = name)
             r.Ra_obs.Trace.rd_events)
      in
      check "one attempt span per transmission"
        (List.for_all
           (fun r -> count_named "retry.attempt" r = r.Ra_obs.Trace.rd_attempts)
           recorded);
      check "every round carries its final verdict"
        (List.for_all (fun r -> count_named "verdict" r = 1) recorded);
      check "impairment events captured"
        (loss = 0.0
        || List.exists (fun r -> count_named "net.drop" r > 0) recorded);
      check "retries causally linked to drops"
        (loss = 0.0
        || List.exists (fun r -> r.Ra_obs.Trace.rd_attempts > 1) recorded);
      (* --- Perfetto export parses; every event rides one trace id --- *)
      (match Ra_obs.Json.of_string perfetto with
      | Error _ -> check "perfetto JSON parses" false
      | Ok j ->
        let evs =
          match Ra_obs.Json.member "traceEvents" j with
          | Some (Ra_obs.Json.Arr evs) -> evs
          | _ -> []
        in
        check "perfetto traceEvents non-empty" (evs <> []);
        check "perfetto events carry tid = args.trace_id"
          (List.for_all
             (fun ev ->
               match Ra_obs.Json.member "ph" ev with
               | Some (Ra_obs.Json.Str "M") -> true (* metadata *)
               | _ -> (
                 match
                   ( Ra_obs.Json.member "tid" ev,
                     Option.bind (Ra_obs.Json.member "args" ev)
                       (Ra_obs.Json.member "trace_id") )
                 with
                 | Some (Ra_obs.Json.Num tid), Some (Ra_obs.Json.Num tr) -> tid = tr
                 | _ -> false))
             evs));
      (* --- JSONL round-trip --- *)
      check "rounds JSONL round-trips"
        (match Ra_obs.Export.parse_jsonl (Ra_obs.Export.rounds_jsonl recorded) with
        | Ok js ->
          List.length js = List.length recorded
          && List.for_all2
               (fun j r -> Ra_obs.Trace.round_of_json j = Some r)
               js recorded
        | Error _ -> false);
      (* --- tracing never touches the wire: byte-identical transcripts --- *)
      let transcript_of traced =
        let s = Session.create ~ram_size:4096 () in
        if traced then ignore (Session.enable_tracing s);
        Session.advance_time s ~seconds:1.0;
        Session.set_impairment s
          (Some
             (Ra_net.Impairment.create
                ~to_prover:(Ra_net.Impairment.lossy 0.3)
                ~to_verifier:(Ra_net.Impairment.lossy 0.3)
                ~seed:42L ()));
        let r = Session.attest_round_r s in
        ( r.Session.r_verdict,
          r.Session.r_attempts,
          List.map
            (fun e -> e.Ra_net.Channel.payload)
            (Ra_net.Channel.transcript (Session.channel s)) )
      in
      check "transcripts byte-identical with tracing on/off"
        (transcript_of true = transcript_of false);
      check "paper model unchanged" (Experiment.table2 () = Experiment.expected_table2);
      (* --- SLO watchdog --- *)
      check "slo watchdog produced checks" (checks <> []);
      check "default objectives met at this loss rate"
        (Ra_obs.Slo.breaches checks = []);
      check "impossible objective breaches"
        (Fleet.slo_watch
           ~policy:{ Fleet.default_slo_policy with slo_max_p99_s = 0.0 }
           fleet
        |> Ra_obs.Slo.breaches <> []);
      check "exact-threshold observation is compliant"
        (let c = List.hd grid in
         (Ra_obs.Slo.evaluate ~scope:"selftest"
            (Ra_obs.Slo.objective ~name:"selftest_exact"
               ~limit:c.Fleet.c_p99_s Ra_obs.Slo.At_most)
            ~observed:c.Fleet.c_p99_s)
           .Ra_obs.Slo.ck_ok);
      let exposition = Ra_obs.Export.render_prometheus Ra_obs.Registry.default in
      let has family = Ra_net.Trace.contains_substring ~needle:family exposition in
      List.iter
        (fun family -> check ("exposition family " ^ family) (has family))
        [
          "ra_trace_rounds_total";
          "ra_trace_events_total";
          "ra_slo_evaluations_total{";
          "ra_slo_breaches_total{";
          "ra_slo_margin{";
        ];
      match !failures with
      | [] ->
        print_endline "trace selftest ok";
        0
      | fs ->
        List.iter (fun f -> Printf.eprintf "trace selftest FAILED: %s\n" f) (List.rev fs);
        1
    end
  end

let trace_cmd =
  let n = Arg.(value & opt int 4 & info [ "size" ] ~docv:"N" ~doc:"Fleet size.") in
  let rounds =
    Arg.(value & opt int 5 & info [ "rounds" ] ~docv:"R" ~doc:"Traced rounds per member.")
  in
  let loss =
    Arg.(value & opt float 0.2 & info [ "loss" ] ~docv:"P"
           ~doc:"Per-direction loss probability for the traced chaos cell.")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the Perfetto trace-event JSON here.")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Verify causal linking, wire-neutrality, Perfetto/JSONL exports \
                 and the SLO watchdog; non-zero exit on failure.")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Record causally-traced chaos rounds and export a Perfetto trace")
    Term.(const run_trace $ n $ rounds $ loss $ out $ selftest)

(* ---- sched ---- *)

let run_sched n rounds loss shards selftest =
  if n < 1 || n > 1000 then begin
    Printf.eprintf "fleet size must be 1..1000\n";
    1
  end
  else if not (loss >= 0.0 && loss < 1.0) then begin
    Printf.eprintf "loss must be in [0, 1)\n";
    1
  end
  else if shards < 1 || shards > 64 then begin
    Printf.eprintf "shards must be 1..64\n";
    1
  end
  else begin
    let names = List.init n (Printf.sprintf "device-%02d") in
    let member_clock m = Ra_net.Simtime.now (Session.time (Fleet.member_session m)) in
    (* everything observable about a fleet: verdict ledger, member
       clocks and the raw wire transcripts — the event engine must
       reproduce all of it byte-for-byte *)
    let fleet_state f =
      ( Fleet.summary f,
        List.map Fleet.member_history (Fleet.members f),
        List.map member_clock (Fleet.members f),
        List.map
          (fun m -> Ra_net.Channel.transcript (Session.channel (Fleet.member_session m)))
          (Fleet.members f) )
    in
    let sweep_with engine =
      let f = Fleet.create ~ram_size:4096 ~names () in
      Fleet.advance f ~seconds:1.0;
      let verdicts = Fleet.sweep ~engine f in
      (verdicts, fleet_state f)
    in
    let sweep_seq = sweep_with `Seq in
    let sweep_ev = sweep_with `Events in
    let sweep_sh = sweep_with (`Shards shards) in
    let chaos_with engine =
      let f = Fleet.create ~ram_size:4096 ~names () in
      Fleet.enable_tracing f;
      let grid =
        Fleet.chaos_sweep ~seed:42L ~engine ~rounds_per_member:rounds
          ~losses:[ 0.0; loss ]
          ~policies:[ ("default", Retry.default) ]
          f
      in
      (grid, fleet_state f, Fleet.recent_rounds f)
    in
    let chaos_seq = chaos_with `Seq in
    let chaos_ev = chaos_with `Events in
    let chaos_sh = chaos_with (`Shards shards) in
    let grid, _, _ = chaos_ev in
    Printf.printf
      "engines: sequential oracle vs event queue vs %d shard%s, %d members x %d \
       rounds\n\n"
      shards
      (if shards = 1 then "" else "s")
      n rounds;
    Printf.printf "%-8s %12s %14s %10s %10s\n" "loss" "converged" "mean attempts"
      "p50 (s)" "p99 (s)";
    List.iter
      (fun c ->
        Printf.printf "%-8s %11.1f%% %14.2f %10.3f %10.3f\n"
          (Printf.sprintf "%.0f%%" (100.0 *. c.Fleet.c_loss))
          (Fleet.convergence_pct c) c.Fleet.c_mean_attempts c.Fleet.c_p50_s
          c.Fleet.c_p99_s)
      grid;
    Printf.printf "\nsweep identical across engines: %b (events), %b (shards)\n"
      (sweep_seq = sweep_ev) (sweep_seq = sweep_sh);
    Printf.printf "traced chaos identical across engines: %b (events), %b (shards)\n"
      (chaos_seq = chaos_ev) (chaos_seq = chaos_sh);
    if not selftest then 0
    else begin
      let failures = ref [] in
      let check name ok = if not ok then failures := name :: !failures in
      check "sweep: verdicts, ledgers, clocks and transcripts identical"
        (sweep_seq = sweep_ev);
      (let g1, s1, _ = chaos_seq
       and g2, s2, _ = chaos_ev in
       check "chaos: grid, ledgers, clocks and transcripts identical"
         (g1 = g2 && s1 = s2));
      (let _, _, r1 = chaos_seq
       and _, _, r2 = chaos_ev in
       check "flight recorders identical across engines" (r1 = r2));
      check "event engine deterministic across runs" (chaos_with `Events = chaos_ev);
      (* the sharded engine must agree with the oracle on everything —
         including flight recorders — at several shard counts, not just
         the one requested on the command line *)
      check
        (Printf.sprintf "sharded sweep identical to oracle at %d shards" shards)
        (sweep_seq = sweep_sh);
      check
        (Printf.sprintf "sharded chaos identical to oracle at %d shards" shards)
        (chaos_seq = chaos_sh);
      List.iter
        (fun k ->
          check
            (Printf.sprintf "sharded chaos identical to oracle at %d shards" k)
            (chaos_with (`Shards k) = chaos_seq))
        (List.filter (fun k -> k <> shards) [ 1; 2; 3; 7 ]);
      (* pooled parallel sweep: same verdicts and ledgers as the oracle *)
      (let f_seq = Fleet.create ~ram_size:4096 ~names () in
       let f_par = Fleet.create ~ram_size:4096 ~names () in
       let a = Fleet.sweep f_seq in
       let b = Fleet.sweep_par ~domains:4 f_par in
       check "pooled sweep_par identical to sweep"
         (a = b && Fleet.summary f_seq = Fleet.summary f_par));
      (* streaming sweep: fingerprint independent of the shard count *)
      (let fp k =
         (Fleet.stream_sweep ~ram_size:4096 ~shards:k ~members:n ())
           .Fleet.st_fingerprint
       in
       let base = fp 1 in
       check "stream fingerprint invariant across shard counts"
         (List.for_all (fun k -> fp k = base) [ 2; shards ]));
      (* scheduler primitives: tie order is insertion order, past events
         clamp to now instead of rewinding the timeline *)
      let sched = Sched.create () in
      let order = ref [] in
      Sched.at sched ~at:2.0 (fun () -> order := "b" :: !order);
      Sched.at sched ~at:1.0 (fun () ->
          order := "a" :: !order;
          Sched.at sched ~at:0.5 (fun () -> order := "clamped" :: !order));
      ignore (Sched.run sched);
      check "ties and past events fire deterministically"
        (List.rev !order = [ "a"; "clamped"; "b" ] && Sched.now sched = 2.0);
      (* delayed delivery through the queue: the defer hook turns an
         inline Delay impairment into a scheduled delivery event *)
      let time = Ra_net.Simtime.create () in
      let ch = Ra_net.Channel.create time (Ra_net.Trace.create time) in
      let got = ref [] in
      let (_ : string Ra_net.Channel.Endpoint.handle) =
        Ra_net.Channel.Endpoint.attach ch Ra_net.Channel.Prover_side (fun m ->
            got := m :: !got)
      in
      Ra_net.Channel.set_impairment ch
        (Some
           (Ra_net.Impairment.create
              ~to_prover:{ Ra_net.Impairment.pristine with delay = 1.0; delay_s = 0.5 }
              ~seed:5L ()));
      let dsched = Sched.create () in
      Ra_net.Channel.set_defer ch
        (Some
           (fun delay deliver ->
             Sched.after dsched ~delay (fun () ->
                 Ra_net.Simtime.advance_to time (Sched.now dsched);
                 deliver ())));
      Ra_net.Channel.send ch ~src:Ra_net.Channel.Verifier_side "deferred";
      let (_ : bool) = Ra_net.Channel.forward_next ch ~dst:Ra_net.Channel.Prover_side in
      check "delayed delivery lands in the queue, not inline"
        (!got = [] && Sched.pending dsched = 1);
      ignore (Sched.run dsched);
      check "deferred delivery fires at its delay"
        (!got = [ "deferred" ] && Ra_net.Simtime.now time = Sched.now dsched);
      let exposition = Ra_obs.Export.render_prometheus Ra_obs.Registry.default in
      let has family = Ra_net.Trace.contains_substring ~needle:family exposition in
      List.iter
        (fun family -> check ("exposition family " ^ family) (has family))
        [
          "ra_sched_events_total{";
          "ra_sched_queue_depth";
          "ra_sched_lag_seconds_bucket{";
        ];
      check "scheduler fired at least one event per member round"
        (Ra_obs.Registry.Counter.value
           (Ra_obs.Registry.Counter.get ~labels:[ ("kind", "fired") ]
              "ra_sched_events_total")
        >= n * rounds);
      check "paper model unchanged" (Experiment.table2 () = Experiment.expected_table2);
      match !failures with
      | [] ->
        print_endline "sched selftest ok";
        0
      | fs ->
        List.iter (fun f -> Printf.eprintf "sched selftest FAILED: %s\n" f) (List.rev fs);
        1
    end
  end

let sched_cmd =
  let n =
    Arg.(
      value
      & opt int 4
      & info [ "size"; "members" ] ~docv:"N" ~doc:"Fleet size (members).")
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"Rounds per member per cell.")
  in
  let loss =
    Arg.(value & opt float 0.2 & info [ "loss" ] ~docv:"P"
           ~doc:"Per-direction loss probability for the lossy cell.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"K"
           ~doc:"Shard count for the sharded engine (contiguous member ranges, \
                 one event timeline per shard on the persistent domain pool).")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Verify engine equivalence (verdicts, ledgers, transcripts, flight \
                 recorders) across the sequential, event and sharded engines at \
                 several shard counts, the pooled parallel sweep, streaming \
                 fingerprint shard-invariance, scheduler determinism, deferred \
                 delivery and the ra_sched_* metric families; non-zero exit on \
                 failure.")
  in
  Cmd.v
    (Cmd.info "sched"
       ~doc:"Run fleet sweeps on the deterministic event queue and compare engines")
    Term.(const run_sched $ n $ rounds $ loss $ shards $ selftest)

(* ---- serve ---- *)

let serve_sym_key = "K_attest_0123456789."

let serve_config ~rate =
  let vcfg =
    Verifier.Config.v ~sym_key:serve_sym_key
      ~reference_image:(String.make 64 '\xc3')
      ~time:(Ra_net.Simtime.create ()) ()
  in
  {
    (Server.default_config vcfg) with
    Server.sc_admission =
      {
        Admission.default_config with
        (* size the per-device bucket above the offered per-device rate,
           so a well-behaved fleet is never throttled *)
        device_rate = Float.max 1.0 (2.0 *. rate);
        device_burst = Float.max 12.0 (8.0 *. rate);
      };
  }

let run_serve devices rate horizon shards flood_factor bursty selftest =
  if devices < 1 || devices > 200_000 then begin
    Printf.eprintf "devices must be 1..200000\n";
    1
  end
  else if shards < 1 then begin
    Printf.eprintf "shards must be >= 1\n";
    1
  end
  else begin
    let cfg = serve_config ~rate in
    let traffic =
      {
        Server.Load.default_traffic with
        Server.Load.tr_devices = devices;
        tr_rate = rate;
        tr_process = (if bursty then `Bursty else `Poisson);
        tr_horizon_s = horizon;
        tr_seed = 2016L;
      }
    in
    let engine = if shards = 1 then `Seq else `Shards shards in
    let base, _ = Server.Load.run ~engine cfg traffic in
    print_string (Server.Load.render base);
    let flood_traffic =
      if flood_factor <= 0.0 then None
      else begin
        let sources = max 1 (devices / 20) in
        let aggregate = flood_factor *. (float_of_int devices *. rate) in
        Some
          {
            traffic with
            Server.Load.tr_flood_sources = sources;
            tr_flood_rate = aggregate /. float_of_int sources;
          }
      end
    in
    let flood =
      Option.map
        (fun ft ->
          let r, _ = Server.Load.run ~engine cfg ft in
          print_string (Server.Load.render r);
          r)
        flood_traffic
    in
    List.iter
      (fun c -> Format.printf "%a@." Ra_obs.Slo.pp_check c)
      (Server.Load.slo_watch base);
    if not selftest then 0
    else begin
      let failures = ref [] in
      let check name ok = if not ok then failures := name :: !failures in
      (* batched and single-report verification agree verdict for verdict *)
      let image = cfg.Server.sc_verifier.Verifier.Config.reference_image in
      let keyed = Auth.keyed serve_sym_key in
      let resps =
        Array.init 16 (fun i ->
            let resp0 =
              {
                Message.echo_challenge = "";
                echo_freshness = Message.F_counter (Int64.of_int (i + 1));
                report = "";
              }
            in
            let report =
              if i mod 4 = 0 then String.make 20 '\xa5'
              else
                Auth.response_report_keyed ~keyed
                  ~body:(Message.response_body resp0)
                  ~memory_image:image
            in
            { resp0 with report })
      in
      let batch_verifier =
        match Verifier.of_config cfg.Server.sc_verifier with
        | Ok v -> v
        | Error m -> failwith m
      in
      let batched = Server.Batch.verify batch_verifier resps in
      check "batch verdicts = single verdicts"
        (Array.for_all2
           (fun b r ->
             b
             = Server.Batch.verify_one ~sym_key:serve_sym_key
                 ~reference_image:image r)
           batched resps);
      (* authenticated admission is deterministic across shard counts *)
      let det_traffic =
        {
          traffic with
          Server.Load.tr_devices = min devices 12;
          tr_horizon_s = Float.min horizon 6.0;
        }
      in
      let per_device outcomes =
        List.filter_map
          (fun o ->
            match o.Server.oc_device with
            | Some d -> Some (d, o.Server.oc_tag, o.Server.oc_result)
            | None -> None)
          outcomes
        |> List.sort compare
      in
      let _, seq =
        Server.Load.run ~engine:`Seq ~record_outcomes:true cfg det_traffic
      in
      let _, sharded =
        Server.Load.run ~engine:(`Shards (max 2 shards)) ~record_outcomes:true
          cfg det_traffic
      in
      check "Seq vs Shards admission determinism"
        (per_device seq = per_device sharded);
      (* flood: goodput holds and drops land on admission, not timeouts *)
      (match flood with
      | None -> check "flood run present (--flood > 0)" false
      | Some f ->
        check "goodput >= 90% of no-flood baseline"
          (float_of_int f.Server.Load.rp_trusted
          >= 0.9 *. float_of_int base.Server.Load.rp_trusted);
        let drops r =
          Option.value
            (List.assoc_opt r f.Server.Load.rp_breakdown)
            ~default:0
        in
        check "flood drops attributed to admission"
          (drops Verdict.Reason.Rate_limited + drops Verdict.Reason.Queue_full > 0);
        check "no verification timeouts under flood"
          (drops Verdict.Reason.Timed_out = 0));
      (* both sides of the wire expose the same rejection-reason labels *)
      let fleet = Fleet.create ~ram_size:4096 ~names:[ "serve-dev" ] () in
      Fleet.advance fleet ~seconds:10.0;
      ignore (Fleet.sweep fleet);
      let first = Fleet.member_session (List.hd (Fleet.members fleet)) in
      let svc = Session.service first in
      let scheme = Verifier.scheme (Session.verifier first) in
      let forged =
        Service.make_request ~sym_key:(String.make 20 'x') ~scheme
          ~freshness:(Message.F_counter 99L) Service.Ping
      in
      ignore (Service.handle_r svc forged);
      let exposition = Ra_obs.Export.render_prometheus Ra_obs.Registry.default in
      let has needle = Ra_net.Trace.contains_substring ~needle exposition in
      check "server rejections exposed under shared reason label"
        (has "ra_server_rejections_total{reason=\"rate_limited\"}");
      check "service rejections exposed under shared reason label"
        (has "ra_service_rejections_total{reason=\"bad_auth\"}");
      check "server verdict counter exposed"
        (has "ra_server_verdicts_total{verdict=\"trusted\"}");
      check "reason labels come from Verdict.Reason.label"
        (Verdict.Reason.label Verdict.Reason.Rate_limited = "rate_limited"
        && Verdict.Reason.label Verdict.Reason.Bad_auth = "bad_auth");
      (* the paper-model tables are untouched by the server layer *)
      check "Table 2 matrix unchanged"
        (Experiment.table2 () = Experiment.expected_table2);
      match !failures with
      | [] ->
        print_endline "serve selftest ok";
        0
      | fs ->
        List.iter
          (fun f -> Printf.eprintf "serve selftest FAILED: %s\n" f)
          (List.rev fs);
        1
    end
  end

let serve_cmd =
  let devices =
    Arg.(value & opt int 64 & info [ "devices" ] ~docv:"N"
           ~doc:"Registered report sources (known-class identities).")
  in
  let rate =
    Arg.(value & opt float 0.5 & info [ "rate" ] ~docv:"RPS"
           ~doc:"Per-device reports per simulated second.")
  in
  let horizon =
    Arg.(value & opt float 30.0 & info [ "horizon" ] ~docv:"S"
           ~doc:"Simulated seconds of open-loop traffic.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"K"
           ~doc:"Shard count (1 = sequential engine).")
  in
  let flood =
    Arg.(value & opt float 10.0 & info [ "flood" ] ~docv:"X"
           ~doc:"Also run an Adv_ext flood at X times the authenticated \
                 aggregate rate (0 disables the flood run).")
  in
  let bursty =
    Arg.(value & flag & info [ "bursty" ]
           ~doc:"Gilbert-Elliott-bursty arrivals instead of Poisson.")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Verify batched-vs-single verdict agreement, Seq-vs-Shards \
                 admission determinism, flood goodput and drop attribution, \
                 shared rejection-reason labels across \
                 ra_service_/ra_server_rejections_total, and that the paper's \
                 Table 2 matrix is unchanged; non-zero exit on failure.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Run the verifier-as-a-service against open-loop fleet traffic")
    Term.(
      const run_serve $ devices $ rate $ horizon $ shards $ flood $ bursty
      $ selftest)

(* ---- profile ---- *)

let run_prof n rounds loss shards period out folded_out selftest =
  if n < 1 || n > 1000 then begin
    Printf.eprintf "fleet size must be 1..1000\n";
    1
  end
  else if not (loss >= 0.0 && loss < 1.0) then begin
    Printf.eprintf "loss must be in [0, 1)\n";
    1
  end
  else if shards < 1 || shards > 64 then begin
    Printf.eprintf "shards must be 1..64\n";
    1
  end
  else if period < 1 then begin
    Printf.eprintf "period must be >= 1 cycles\n";
    1
  end
  else begin
    let module Profiler = Ra_obs.Profiler in
    (* --- in-ISA SHA-1 flame graph: PC-sample the interpreted anchor
       through one full attestation round --- *)
    let isa_flame ~period =
      let sym_key = "K_attest_0123456789." in
      let blob = Auth.prover_key_blob ~sym_key ~public:None in
      let device =
        Device.create ~ram_size:2048
          ~rom_images:[ (Device.region_attest, Isa_anchor.rom_image ()) ]
          ~key:blob ()
      in
      Device.fill_ram_deterministic device ~seed:11L;
      let anchor =
        Isa_anchor.install device ~scheme:(Some Timing.Auth_hmac_sha1)
          ~policy:Freshness.Counter
      in
      let verifier =
        match
          Verifier.of_config
            (Verifier.Config.v ~scheme:Timing.Auth_hmac_sha1
               ~freshness_kind:Verifier.Fk_counter ~sym_key
               ~time:(Ra_net.Simtime.create ())
               ~reference_image:(Isa_anchor.measure_memory anchor) ())
        with
        | Ok v -> v
        | Error msg -> failwith msg
      in
      let pc = Profiler.Pc.create () in
      let sampler = Ra_isa.Sampler.create ~period ~memory:(Device.memory device) pc in
      Ra_isa.Sha1_asm.set_sampler (Isa_anchor.sha anchor) (Some sampler);
      let attested =
        match Isa_anchor.handle_request anchor (Verifier.make_request verifier) with
        | Ok _ -> true
        | Error _ -> false
      in
      Ra_isa.Sampler.flush sampler;
      (pc, attested, Isa_anchor.last_mac_cycles anchor)
    in
    let symbolized_fraction pc =
      let total = Profiler.Pc.cycles pc in
      if Int64.equal total 0L then 0.0
      else
        Int64.to_float
          (Profiler.Pc.cycles_matching pc ~f:(fun leaf ->
               not (String.length leaf >= 2 && String.sub leaf 0 2 = "0x")))
        /. Int64.to_float total
    in
    (* --- fleet run: traced+profiled chaos rounds on the sharded engine,
       then one sharded sweep recording the queue-depth counter track --- *)
    let names = List.init n (Printf.sprintf "device-%02d") in
    let fleet_profile () =
      let fleet = Fleet.create ~ram_size:4096 ~names () in
      Fleet.enable_tracing fleet;
      Fleet.enable_profiling fleet;
      Fleet.advance fleet ~seconds:1.0;
      let (_ : Fleet.chaos_cell list) =
        Fleet.chaos_sweep ~seed:42L ~engine:(`Shards shards)
          ~rounds_per_member:rounds ~losses:[ loss ]
          ~policies:[ ("default", Retry.default) ]
          fleet
      in
      let tracks =
        Array.init shards (fun i ->
            Profiler.Track.create (Printf.sprintf "queue-depth/shard-%d" i))
      in
      let (_ : (string * Verdict.t option) list) =
        Fleet.sweep_shards ~tracks ~shards fleet
      in
      (fleet, Profiler.Track.merge ~name:"ra_sched_queue_depth" (Array.to_list tracks))
    in
    let fleet, track = fleet_profile () in
    let prof = Fleet.profile ~shards fleet in
    let fleet_folded = Profiler.folded prof in
    let fleet_jsonl = Ra_obs.Export.profile_jsonl prof in
    let pc, isa_attested, mac_cycles = isa_flame ~period in
    (* fold the ISA stacks into the fleet profile so one folded file and
       one JSONL stream carry both views *)
    Profiler.Pc.absorb prof.Profiler.pc pc;
    let folded_text = Profiler.folded prof in
    let phases = Profiler.Phases.samples prof.Profiler.phases in
    let perfetto =
      Ra_obs.Export.perfetto_string ~counters:[ track ] ~phases
        (Fleet.recent_rounds fleet)
    in
    Printf.printf
      "in-ISA SHA-1 anchor: %Ld interpreted mac cycles, %d stacks, %.1f%% symbolized \
       (period %d cycles)\n"
      mac_cycles
      (List.length (Profiler.Pc.rows pc))
      (100.0 *. symbolized_fraction pc)
      period;
    let top =
      Profiler.Pc.rows pc
      |> List.sort (fun (_, a, _) (_, b, _) -> Int64.compare b a)
      |> List.filteri (fun i _ -> i < 3)
    in
    List.iter
      (fun (frames, cycles, samples) ->
        Printf.printf "  %-56s %10Ld cycles %5d samples\n"
          (String.concat ";" frames) cycles samples)
      top;
    Printf.printf "\nfleet: %d members x %d rounds at %.0f%% loss, %d shard%s\n" n
      rounds (100.0 *. loss) shards
      (if shards = 1 then "" else "s");
    Printf.printf "%-12s %14s %16s %8s\n" "phase" "cycles" "energy (nJ)" "samples";
    List.iter
      (fun (phase, (cycles, nj, samples)) ->
        Printf.printf "%-12s %14Ld %16.1f %8d\n" phase cycles nj samples)
      (Profiler.Phases.totals prof.Profiler.phases);
    Printf.printf "queue-depth counter track: %d points\n"
      (List.length (Profiler.Track.points track));
    (match folded_out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc folded_text;
      close_out oc;
      Printf.printf "wrote %s (%d bytes) — feed it to flamegraph.pl\n" path
        (String.length folded_text));
    (match out with
    | None -> ()
    | Some path ->
      let oc = open_out path in
      output_string oc perfetto;
      close_out oc;
      Printf.printf "wrote %s (%d bytes) — load it at ui.perfetto.dev or chrome://tracing\n"
        path (String.length perfetto));
    if not selftest then 0
    else begin
      let failures = ref [] in
      let check name ok = if not ok then failures := name :: !failures in
      (* --- the ISA flame graph is attested, exact and symbolized --- *)
      check "isa anchor attested under sampling" isa_attested;
      check "isa sampler attributed every interpreted cycle"
        (Int64.equal (Profiler.Pc.cycles pc) mac_cycles);
      check "isa flame graph >= 90% symbolized" (symbolized_fraction pc >= 0.9);
      (let pc2, _, _ = isa_flame ~period in
       check "isa flame graph deterministic across runs"
         (String.equal (Profiler.Pc.folded pc) (Profiler.Pc.folded pc2)));
      (* --- folded stacks parse as "stack cycles" lines --- *)
      let folded_wellformed text =
        String.split_on_char '\n' text
        |> List.filter (fun l -> l <> "")
        |> List.for_all (fun line ->
               match String.rindex_opt line ' ' with
               | None -> false
               | Some i ->
                 let count = String.sub line (i + 1) (String.length line - i - 1) in
                 i > 0
                 && (match Int64.of_string_opt count with
                    | Some c -> Int64.compare c 0L > 0
                    | None -> false))
      in
      check "folded stacks parse as 'stack cycles'"
        (folded_text <> "" && folded_wellformed folded_text);
      (* --- fleet profile merge is shard-invariant and deterministic --- *)
      let merged k =
        let p = Fleet.profile ~shards:k fleet in
        (Profiler.folded p, Ra_obs.Export.profile_jsonl p)
      in
      let base = merged 1 in
      check "fleet profile byte-identical at shard counts 1/2/4"
        (List.for_all (fun k -> merged k = base) [ 2; 4 ]);
      (let fleet2, _ = fleet_profile () in
       let p2 = Fleet.profile ~shards fleet2 in
       check "fleet profile deterministic across runs"
         (String.equal fleet_folded (Profiler.folded p2)
         && String.equal fleet_jsonl (Ra_obs.Export.profile_jsonl p2)));
      (* --- profile JSONL round-trips through the line parser --- *)
      check "profile JSONL parses"
        (match Ra_obs.Export.parse_jsonl fleet_jsonl with
        | Ok js -> js <> []
        | Error _ -> false);
      (* --- Perfetto export parses and carries counter + phase tracks --- *)
      (match Ra_obs.Json.of_string perfetto with
      | Error _ -> check "perfetto JSON parses" false
      | Ok j ->
        let evs =
          match Ra_obs.Json.member "traceEvents" j with
          | Some (Ra_obs.Json.Arr evs) -> evs
          | _ -> []
        in
        let has_ph p =
          List.exists
            (fun ev ->
              match Ra_obs.Json.member "ph" ev with
              | Some (Ra_obs.Json.Str s) -> s = p
              | _ -> false)
            evs
        in
        check "perfetto counter-track events present" (has_ph "C");
        check "perfetto phase instants present"
          (List.exists
             (fun ev ->
               match Ra_obs.Json.member "name" ev with
               | Some (Ra_obs.Json.Str s) ->
                 String.length s > 6 && String.sub s 0 6 = "phase."
               | _ -> false)
             evs));
      (* --- phase attribution covers the round anatomy --- *)
      let totals = Profiler.Phases.totals prof.Profiler.phases in
      check "phase totals include auth/freshness/mac/radio"
        (List.for_all
           (fun p -> List.mem_assoc p totals)
           [ "auth"; "freshness"; "mac"; "radio" ]);
      let retried =
        List.exists
          (fun r -> r.Ra_obs.Trace.rd_attempts > 1)
          (Fleet.recent_rounds fleet)
      in
      check "wait attributed on retried rounds"
        ((not retried) || List.mem_assoc "wait" totals);
      check "no phase samples dropped from the merged ring"
        (Profiler.Phases.dropped prof.Profiler.phases = 0);
      (* --- queue-depth track is non-empty and chronological --- *)
      let pts = Profiler.Track.points track in
      check "queue-depth track recorded" (pts <> []);
      check "queue-depth track chronological"
        (let rec mono = function
           | (a, _) :: ((b, _) :: _ as tl) -> a <= b && mono tl
           | _ -> true
         in
         mono pts);
      (* --- profiling never touches the wire: byte-identical transcripts --- *)
      let transcript_of profiled =
        let s = Session.create ~ram_size:4096 () in
        if profiled then ignore (Session.enable_profiling s);
        Session.advance_time s ~seconds:1.0;
        Session.set_impairment s
          (Some
             (Ra_net.Impairment.create
                ~to_prover:(Ra_net.Impairment.lossy 0.3)
                ~to_verifier:(Ra_net.Impairment.lossy 0.3)
                ~seed:42L ()));
        let r = Session.attest_round_r s in
        ( r.Session.r_verdict,
          r.Session.r_attempts,
          List.map
            (fun e -> e.Ra_net.Channel.payload)
            (Ra_net.Channel.transcript (Session.channel s)) )
      in
      check "transcripts byte-identical with profiling on/off"
        (transcript_of true = transcript_of false);
      (let grid_of profiled =
         let f = Fleet.create ~ram_size:4096 ~names () in
         if profiled then Fleet.enable_profiling f;
         Fleet.chaos_sweep ~seed:7L ~rounds_per_member:2 ~losses:[ loss ]
           ~policies:[ ("default", Retry.default) ]
           f
       in
       check "chaos grid identical with profiling on/off"
         (grid_of true = grid_of false));
      check "paper model unchanged" (Experiment.table2 () = Experiment.expected_table2);
      match !failures with
      | [] ->
        print_endline "profile selftest ok";
        0
      | fs ->
        List.iter
          (fun f -> Printf.eprintf "profile selftest FAILED: %s\n" f)
          (List.rev fs);
        1
    end
  end

let prof_cmd =
  let n =
    Arg.(
      value
      & opt int 4
      & info [ "size"; "members" ] ~docv:"N" ~doc:"Fleet size (members).")
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R" ~doc:"Profiled rounds per member.")
  in
  let loss =
    Arg.(value & opt float 0.2 & info [ "loss" ] ~docv:"P"
           ~doc:"Per-direction loss probability for the profiled chaos cell.")
  in
  let shards =
    Arg.(value & opt int 4 & info [ "shards" ] ~docv:"K"
           ~doc:"Shard count for the sharded engine and the profile merge.")
  in
  let period =
    Arg.(value & opt int Ra_isa.Sampler.default_period
         & info [ "period" ] ~docv:"CYCLES"
             ~doc:"PC-sampling period in prover CPU cycles (deterministic; \
                   never wall time).")
  in
  let out =
    Arg.(value & opt (some string) None & info [ "out" ] ~docv:"FILE"
           ~doc:"Write the Perfetto trace-event JSON (causal rounds, phase \
                 instants, queue-depth counter track) here.")
  in
  let folded =
    Arg.(value & opt (some string) None & info [ "folded" ] ~docv:"FILE"
           ~doc:"Write flamegraph.pl-compatible folded stacks of the in-ISA \
                 SHA-1 attestation here.")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Verify cycle-exact attribution, >= 90% symbolization, \
                 wire-neutrality, shard-invariant and run-deterministic \
                 profile merges, and the folded/JSONL/Perfetto exports; \
                 non-zero exit on failure.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:"PC-sample the in-ISA anchor and attribute fleet cycles/energy to phases")
    Term.(const run_prof $ n $ rounds $ loss $ shards $ period $ out $ folded $ selftest)

(* ---- replay ---- *)

let run_replay n rounds loss seed diagnosis_out capsules_out perfetto_out selftest =
  if n < 1 || n > 1000 then begin
    Printf.eprintf "fleet size must be 1..1000\n";
    1
  end
  else if rounds < 1 then begin
    Printf.eprintf "rounds must be >= 1\n";
    1
  end
  else if not (loss > 0.0 && loss < 1.0) then begin
    Printf.eprintf "loss must be in (0, 1)\n";
    1
  end
  else begin
    let module Forensics = Ra_obs.Forensics in
    let names = List.init n (Printf.sprintf "device-%02d") in
    let losses = [ 0.0; loss ] in
    let policies = [ ("no-retry", Retry.no_retry); ("default", Retry.default) ] in
    (* one capturing fleet: forensics + tracing + profiling, then the
       failure-provoking sweep *)
    let make_fleet ~capture () =
      let fleet = Fleet.create ~ram_size:4096 ~names () in
      if capture then ignore (Fleet.enable_forensics fleet);
      Fleet.enable_tracing fleet;
      Fleet.enable_profiling fleet;
      fleet
    in
    let sweep ?engine fleet =
      Fleet.chaos_sweep ~seed ?engine ~rounds_per_member:rounds ~losses ~policies
        fleet
    in
    let fleet = make_fleet ~capture:true () in
    let (_ : Fleet.chaos_cell list) = sweep fleet in
    let caps = Fleet.capsules fleet in
    let failures_caps =
      List.filter (fun c -> c.Forensics.cap_kind = Forensics.Failure) caps
    in
    let stamped = Fleet.annotate_exemplars fleet in
    let diags = Forensics.triage caps in
    Printf.printf
      "%d members x %d rounds, cells %s; captured %d capsules (%d failures, %d \
       slowest), %d exemplars stamped\n\n"
      n rounds
      (String.concat ", "
         (List.concat_map
            (fun l ->
              List.map
                (fun (p, _) -> Printf.sprintf "%.0f%%/%s" (100.0 *. l) p)
                policies)
            losses))
      (List.length caps) (List.length failures_caps)
      (List.length caps - List.length failures_caps)
      stamped;
    print_string (Forensics.render_diagnosis diags);
    (* replay the first failure capsule (or the latest capsule when the
       sweep happened to converge everywhere) and report the comparison *)
    let target =
      match failures_caps with
      | c :: _ -> Some c
      | [] -> ( match List.rev caps with c :: _ -> Some c | [] -> None)
    in
    let replayed =
      match target with
      | None ->
        print_endline "\nno capsule to replay";
        None
      | Some c -> (
        Printf.printf
          "\nreplaying %s capsule: %s cell=%d (loss=%.0f%% policy=%s) round=%d \
           reason=%s\n"
          (Forensics.kind_label c.Forensics.cap_kind)
          c.Forensics.cap_name c.Forensics.cap_cell
          (100.0 *. c.Forensics.cap_loss)
          c.Forensics.cap_policy c.Forensics.cap_round c.Forensics.cap_reason;
        match Fleet.replay_capsule fleet c with
        | Error msg ->
          Printf.printf "replay failed: %s\n" msg;
          None
        | Ok rp ->
          Format.printf
            "replayed: %a (%d attempt%s, %.3f s) wire digest %s — %s@."
            Verdict.pp rp.Fleet.rp_verdict rp.Fleet.rp_attempts
            (if rp.Fleet.rp_attempts = 1 then "" else "s")
            rp.Fleet.rp_elapsed_s
            (String.sub rp.Fleet.rp_digest 0 12)
            (if rp.Fleet.rp_match then "byte-identical to the capture"
             else "MISMATCH vs capture");
          Some (c, rp))
    in
    let write path contents what =
      let oc = open_out path in
      output_string oc contents;
      close_out oc;
      Printf.printf "wrote %s (%d bytes) — %s\n" path (String.length contents) what
    in
    (match diagnosis_out with
    | None -> ()
    | Some path ->
      write path (Forensics.diagnosis_jsonl diags) "ranked diagnosis JSONL");
    (match capsules_out with
    | None -> ()
    | Some path -> write path (Forensics.capsules_jsonl caps) "replay capsules JSONL");
    (match perfetto_out with
    | None -> ()
    | Some path ->
      let rounds_tr, phases =
        match replayed with
        | Some (_, rp) ->
          ( (match rp.Fleet.rp_round with Some r -> [ r ] | None -> []),
            match rp.Fleet.rp_profile with
            | Some p -> Ra_obs.Profiler.Phases.samples p.Ra_obs.Profiler.phases
            | None -> [] )
        | None -> ([], [])
      in
      write path
        (Ra_obs.Export.perfetto_string ~counters:[] ~phases rounds_tr)
        "Perfetto trace of the replayed round");
    if not selftest then 0
    else begin
      let failures = ref [] in
      let check name ok = if not ok then failures := name :: !failures in
      (* --- capsules survive the JSON wire --- *)
      check "capsules captured" (caps <> []);
      check "failure capsules captured" (failures_caps <> []);
      check "capsule JSON round-trips"
        (List.for_all
           (fun c ->
             match
               Ra_obs.Json.of_string
                 (Ra_obs.Json.to_string (Forensics.capsule_to_json c))
             with
             | Ok j -> Forensics.capsule_of_json j = Some c
             | Error _ -> false)
           caps);
      (* --- the capsule stream is engine- and shard-invariant --- *)
      let stream engine =
        let f = make_fleet ~capture:true () in
        let (_ : Fleet.chaos_cell list) = sweep ~engine f in
        Forensics.capsules_jsonl (Fleet.capsules f)
      in
      let base = Forensics.capsules_jsonl caps in
      check "capsule stream identical across engines and shard counts"
        (List.for_all
           (fun e -> String.equal (stream e) base)
           [ `Seq; `Events; `Shards 1; `Shards 2; `Shards 4 ]);
      (* --- every capsule replays byte-identically --- *)
      check "every capsule replays byte-identically"
        (List.for_all
           (fun c ->
             match Fleet.replay_capsule fleet c with
             | Ok rp -> rp.Fleet.rp_match
             | Error _ -> false)
           caps);
      check "replay carries a causal trace"
        (match replayed with
        | Some (_, rp) -> rp.Fleet.rp_round <> None
        | None -> true);
      (* --- triage accounts for every failure exactly once --- *)
      check "triage counts sum to the failure total"
        (List.fold_left (fun acc d -> acc + d.Forensics.dg_count) 0 diags
        = List.length failures_caps);
      check "triage is ranked by count"
        (let rec desc = function
           | a :: (b :: _ as tl) ->
             a.Forensics.dg_count >= b.Forensics.dg_count && desc tl
           | _ -> true
         in
         desc diags);
      (* --- SLO buckets carry trace-id exemplars --- *)
      check "exemplars stamped" (stamped > 0);
      check "prometheus buckets carry exemplars"
        (Ra_net.Trace.contains_substring ~needle:"# {trace_id="
           (Ra_obs.Export.render_prometheus Ra_obs.Registry.default));
      (* --- capture never touches the wire --- *)
      (let fingerprint capture =
         let f = make_fleet ~capture () in
         let (_ : Fleet.chaos_cell list) = sweep f in
         Fleet.fingerprint f
       in
       check "fleet fingerprint identical with capture on/off"
         (String.equal (fingerprint true) (fingerprint false)));
      check "paper model unchanged" (Experiment.table2 () = Experiment.expected_table2);
      match !failures with
      | [] ->
        print_endline "replay selftest ok";
        0
      | fs ->
        List.iter
          (fun f -> Printf.eprintf "replay selftest FAILED: %s\n" f)
          (List.rev fs);
        1
    end
  end

let replay_cmd =
  let n =
    Arg.(value & opt int 6 & info [ "size" ] ~docv:"N" ~doc:"Fleet size (members).")
  in
  let rounds =
    Arg.(value & opt int 4 & info [ "rounds" ] ~docv:"R"
           ~doc:"Rounds per member per chaos cell.")
  in
  let loss =
    Arg.(value & opt float 0.4 & info [ "loss" ] ~docv:"P"
           ~doc:"Per-direction loss probability for the failure-provoking cells.")
  in
  let seed =
    Arg.(value & opt int64 31L & info [ "seed" ] ~docv:"SEED"
           ~doc:"Chaos sweep root seed (pinned into every capsule).")
  in
  let diagnosis =
    Arg.(value & opt (some string) None & info [ "diagnosis" ] ~docv:"FILE"
           ~doc:"Write the ranked diagnosis report as JSONL here.")
  in
  let capsules =
    Arg.(value & opt (some string) None & info [ "capsules" ] ~docv:"FILE"
           ~doc:"Write the captured replay capsules as JSONL here.")
  in
  let perfetto =
    Arg.(value & opt (some string) None & info [ "perfetto" ] ~docv:"FILE"
           ~doc:"Write the Perfetto trace of the replayed round here.")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Verify capsule JSON round-trips, engine/shard-invariant capsule \
                 streams, byte-identical replay of every capsule, ranked triage, \
                 bucket exemplars, and capture wire-neutrality; non-zero exit on \
                 failure.")
  in
  Cmd.v
    (Cmd.info "replay"
       ~doc:"Capture failure capsules from a chaos sweep, triage them, and replay \
             one round byte-for-byte")
    Term.(const run_replay $ n $ rounds $ loss $ seed $ diagnosis $ capsules
          $ perfetto $ selftest)

(* ---- session ---- *)

let run_session n rounds records loss seed selftest =
  if n < 1 || n > 1000 then begin
    Printf.eprintf "fleet size must be 1..1000\n";
    1
  end
  else if rounds < 1 then begin
    Printf.eprintf "rounds must be >= 1\n";
    1
  end
  else if records < 0 then begin
    Printf.eprintf "records must be >= 0\n";
    1
  end
  else if not (loss > 0.0 && loss < 1.0) then begin
    Printf.eprintf "loss must be in (0, 1)\n";
    1
  end
  else begin
    let module SS = Secure_session in
    let module Channel = Ra_net.Channel in
    let names = List.init n (Printf.sprintf "device-%02d") in
    let losses = [ 0.0; loss ] in
    let policies = [ ("default", Retry.default) ] in
    let sweep ?engine ?(observe = false) () =
      let fleet = Fleet.create ~ram_size:4096 ~names () in
      if observe then begin
        ignore (Fleet.enable_forensics fleet);
        Fleet.enable_tracing fleet;
        Fleet.enable_profiling fleet
      end;
      let cells =
        Fleet.chaos_sweep ~seed ?engine ~rounds_per_member:rounds
          ~workload:(`Session records) ~losses ~policies fleet
      in
      (fleet, cells)
    in
    let _fleet, cells = sweep () in
    Printf.printf
      "%d members x %d session rounds (handshake + %d records + close each)\n\n"
      n rounds records;
    Printf.printf "%-8s %-10s %-12s %-14s %-8s\n" "loss" "policy" "converged"
      "mean sends" "p99 s";
    List.iter
      (fun c ->
        Printf.printf "%-8s %-10s %-12s %-14.2f %-8.2f\n"
          (Printf.sprintf "%.0f%%" (100.0 *. c.Fleet.c_loss))
          c.Fleet.c_policy
          (Printf.sprintf "%d/%d" c.Fleet.c_converged c.Fleet.c_rounds)
          c.Fleet.c_mean_attempts c.Fleet.c_p99_s)
      cells;
    (* one pristine world for the wire story *)
    let single () =
      let s = Session.create ~ram_size:4096 () in
      Session.advance_time s ~seconds:1.0;
      let r = SS.run_r ~records s in
      (s, r)
    in
    let s1, r1 = single () in
    Printf.printf
      "\nsingle pristine session: %s, %d transmissions, %.3f s, %d wire frames\n"
      (Verdict.label r1.Session.r_verdict)
      r1.Session.r_attempts r1.Session.r_elapsed_s
      (Channel.transcript_length (Session.channel s1));
    if not selftest then 0
    else begin
      let failures = ref [] in
      let check name ok = if not ok then failures := name :: !failures in
      let payloads s =
        List.map
          (fun e -> e.Channel.payload)
          (Channel.transcript (Session.channel s))
      in
      (* --- deterministic transcripts under the fixed seed --- *)
      let s2, r2 = single () in
      check "single-session transcript deterministic" (payloads s1 = payloads s2);
      check "single-session verdict deterministic"
        (r1.Session.r_verdict = r2.Session.r_verdict
        && r1.Session.r_attempts = r2.Session.r_attempts);
      check "session verdict trusted" (r1.Session.r_verdict = Verdict.Trusted);
      (* --- all three engines produce byte-identical fleets --- *)
      let fingerprint ?engine ?observe () =
        let f, cs = sweep ?engine ?observe () in
        (Fleet.fingerprint f, cs)
      in
      let fp_seq, cells_seq = fingerprint () in
      let fp_ev, cells_ev = fingerprint ~engine:`Events () in
      let fp_sh, cells_sh = fingerprint ~engine:(`Shards 2) () in
      check "engines byte-identical (events)"
        (String.equal fp_seq fp_ev && cells_seq = cells_ev);
      check "engines byte-identical (shards)"
        (String.equal fp_seq fp_sh && cells_seq = cells_sh);
      (* --- tracing/profiling/forensics never touch the wire --- *)
      let fp_obs, _ = fingerprint ~observe:true () in
      check "observability wire-neutral" (String.equal fp_seq fp_obs);
      (* --- the lossy cell converges --- *)
      check
        (Printf.sprintf "convergence >= 99%% at %.0f%% loss" (100.0 *. loss))
        (List.exists
           (fun c -> c.Fleet.c_loss > 0.0 && Fleet.convergence_pct c >= 99.0)
           cells);
      (* --- adversary suite: every splice/replay/tamper rejects --- *)
      let fresh () =
        let s = Session.create ~ram_size:4096 () in
        Session.advance_time s ~seconds:1.0;
        s
      in
      let pump s =
        let rec go k =
          if k > 0 then begin
            let a = Session.deliver_next_to_prover s in
            let b = Session.deliver_next_to_verifier s in
            if a || b then go (k - 1)
          end
        in
        go 1000
      in
      let establish s =
        let r = SS.listen s in
        let i = SS.connect s in
        SS.handshake_send i;
        pump s;
        (r, i)
      in
      let new_frames s ~pos =
        List.map
          (fun e -> e.Channel.payload)
          (Channel.transcript_from (Session.channel s) ~pos)
      in
      (* MITM rewrites the handshake init: the transcript bind must die *)
      (let s = fresh () in
       let _r = SS.listen s in
       let i = SS.connect s in
       let pos = Channel.transcript_length (Session.channel s) in
       SS.handshake_send i;
       (match new_frames s ~pos with
       | [ init_frame ] ->
         ignore (Channel.drop_next (Session.channel s) ~src:Channel.Verifier_side);
         (match Message.wire_of_bytes init_frame with
         | Some (Message.Hs_init { hs_nonce; hs_req }) ->
           Channel.deliver (Session.channel s) ~dst:Channel.Prover_side
             (Message.wire_to_bytes
                (Message.Hs_init
                   { hs_nonce = String.map (fun _ -> 'x') hs_nonce; hs_req }))
         | _ -> check "mitm: init frame parses" false);
         ignore (Session.deliver_next_to_verifier s);
         check "mitm handshake substitution rejected"
           ((not (SS.established i))
           && (SS.initiator_stats i).SS.s_hs_rejected = 1)
       | _ -> check "mitm: one init flight" false));
      (* records sealed in one session must not open in another *)
      (let sa = fresh () and sb = fresh () in
       ignore (Verifier.session_nonce (Session.verifier sb));
       let _ra, ia = establish sa in
       let rb, _ib = establish sb in
       let pos = Channel.transcript_length (Session.channel sa) in
       ignore (SS.request_round ia);
       match new_frames sa ~pos with
       | [ record ] ->
         let before = Channel.transcript_length (Session.channel sb) in
         Session.deliver_frame_to_prover sb record;
         check "cross-session splice rejected"
           ((SS.responder_stats rb).SS.s_bad_record = 1
           && Channel.transcript_length (Session.channel sb) = before)
       | _ -> check "splice: one record flight" false);
      (* in-window replay and uniform tamper rejection *)
      (let s = fresh () in
       let r, i = establish s in
       let pos = Channel.transcript_length (Session.channel s) in
       ignore (SS.request_round i);
       match new_frames s ~pos with
       | [ record ] -> (
         pump s;
         Session.deliver_frame_to_prover s record;
         check "in-window replay rejected" ((SS.responder_stats r).SS.s_replayed = 1);
         let pos = Channel.transcript_length (Session.channel s) in
         ignore (SS.request_round i);
         match new_frames s ~pos with
         | [ legit ] ->
           ignore (Channel.drop_next (Session.channel s) ~src:Channel.Verifier_side);
           let flip b =
             String.mapi
               (fun k c -> if k = 0 then Char.chr (Char.code c lxor 1) else c)
               b
           in
           (match Message.wire_of_bytes legit with
           | Some (Message.Record rc) ->
             let silent forged =
               let before = Channel.transcript_length (Session.channel s) in
               Channel.deliver (Session.channel s) ~dst:Channel.Prover_side forged;
               Channel.transcript_length (Session.channel s) = before
             in
             check "tampered ciphertext rejected silently"
               (silent
                  (Message.wire_to_bytes
                     (Message.Record { rc with rec_ct = flip rc.rec_ct })));
             check "tampered tag rejected silently"
               (silent
                  (Message.wire_to_bytes
                     (Message.Record { rc with rec_tag = flip rc.rec_tag })));
             check "tamper rejects uniform (one counter, two hits)"
               ((SS.responder_stats r).SS.s_bad_record = 2)
           | _ -> check "tamper: record parses" false);
           let verdicts = SS.verdict_count i in
           Session.deliver_frame_to_prover s legit;
           pump s;
           check "legit record survives forgeries"
             (SS.verdict_count i = verdicts + 1
             && (SS.responder_stats r).SS.s_replayed = 1)
         | _ -> check "tamper: one record flight" false)
       | _ -> check "replay: one record flight" false);
      check "paper model unchanged" (Experiment.table2 () = Experiment.expected_table2);
      match !failures with
      | [] ->
        print_endline "session selftest ok";
        0
      | fs ->
        List.iter (fun f -> Printf.eprintf "session selftest FAILED: %s\n" f) (List.rev fs);
        1
    end
  end

let session_cmd =
  let n =
    Arg.(value & opt int 6 & info [ "size" ] ~docv:"N" ~doc:"Fleet size (members).")
  in
  let rounds =
    Arg.(value & opt int 3 & info [ "rounds" ] ~docv:"R"
           ~doc:"Session rounds per member per chaos cell.")
  in
  let records =
    Arg.(value & opt int 4 & info [ "records" ] ~docv:"K"
           ~doc:"Streaming attestation records per session.")
  in
  let loss =
    Arg.(value & opt float 0.2 & info [ "loss" ] ~docv:"P"
           ~doc:"Per-direction loss probability for the impaired cell.")
  in
  let seed =
    Arg.(value & opt int64 23L & info [ "seed" ] ~docv:"SEED"
           ~doc:"Chaos sweep root seed.")
  in
  let selftest =
    Arg.(value & flag & info [ "selftest" ]
           ~doc:"Verify deterministic session transcripts, engine-identical \
                 fleets, observability wire-neutrality, >= 99% convergence \
                 under loss, and that MITM substitution, cross-session \
                 splices, replays and tampered records all reject; non-zero \
                 exit on failure.")
  in
  Cmd.v
    (Cmd.info "session"
       ~doc:"Stream encrypted, replay-windowed attestation records over an \
             attested secure session")
    Term.(const run_session $ n $ rounds $ records $ loss $ seed $ selftest)

let main =
  Cmd.group
    (Cmd.info "ra_cli" ~version:"1.0.0"
       ~doc:"Prover-side remote attestation: protocol, attacks, and costs")
    [ attest_cmd; attack_cmd; table2_cmd; costs_cmd; auth_cost_cmd; fleet_cmd; lattice_cmd; inspect_cmd; stats_cmd; chaos_cmd; trace_cmd; sched_cmd; serve_cmd; prof_cmd; replay_cmd; session_cmd ]

let () = exit (Cmd.eval' main)
