(* Quickstart: build a TrustLite-style prover, run one benign attestation
   round, and show what it cost the device.

   Run with: dune exec examples/quickstart.exe *)

open Ra_core
module Device = Ra_mcu.Device
module Cpu = Ra_mcu.Cpu
module Energy = Ra_mcu.Energy

let () =
  (* A session wires together: simulated time, a Dolev-Yao channel, a
     verifier, and a prover booted from the given architecture spec. The
     default spec is Figure 1a: HMAC-authenticated requests, timestamp
     freshness, a 64-bit hardware clock, EA-MPU rules installed by secure
     boot and locked. *)
  let session = Session.create ~ram_size:(64 * 1024) () in
  Session.advance_time session ~seconds:1.0;

  Printf.printf "== quickstart: one benign attestation round ==\n";
  let round = Session.attest_round_r session in
  Format.printf "verifier verdict: %a (attempt %d, %.3f s)@." Verdict.pp
    round.Session.r_verdict round.Session.r_attempts round.Session.r_elapsed_s;

  let device = Session.device session in
  Printf.printf "prover work: %.3f ms of CPU time at 24 MHz\n"
    (Ra_mcu.Timing.ms_of_cycles (Cpu.work_cycles (Device.cpu device)));
  Printf.printf "energy consumed: %.6f J\n"
    (Energy.consumed_joules (Device.energy device));

  (* Now infect the prover: malware modifies attested RAM and stays
     resident. The next round must flag the device. *)
  Printf.printf "\n== after infecting the prover's RAM ==\n";
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) "MALWARE";
  Session.advance_time session ~seconds:1.0;
  let round = Session.attest_round_r session in
  Format.printf "verifier verdict: %a@." Verdict.pp round.Session.r_verdict;

  Printf.printf "\n== protocol trace ==\n";
  Format.printf "%a" Ra_net.Trace.pp (Session.trace session)
