(* Future-work item 1: attestation "in the context of connected devices,
   such as Internet of Things (IoT)". One verifier sweeps a fleet of
   provers; some are healthy, one carries resident malware, one is under
   an impersonation flood, one has drifted clocks and is resynchronized
   first.

   Run with: dune exec examples/iot_fleet.exe *)

open Ra_core
module Device = Ra_mcu.Device
module Energy = Ra_mcu.Energy

type fleet_entry = {
  name : string;
  session : Session.t;
  mutable note : string;
}

let make_device name = { name; session = Session.create ~ram_size:8192 (); note = "" }

let () =
  let fleet = List.map make_device [ "sensor-01"; "sensor-02"; "pump-03"; "valve-04"; "relay-05" ] in
  List.iter (fun e -> Session.advance_time e.session ~seconds:2.0) fleet;

  (* sensor-02 gets infected with resident malware *)
  (match List.find_opt (fun e -> e.name = "sensor-02") fleet with
  | Some e ->
    let d = Session.device e.session in
    Ra_mcu.Cpu.store_bytes (Device.cpu d) (Device.attested_base d) "RESIDENT-IMPLANT";
    e.note <- "(infected with resident malware)"
  | None -> ());

  (* pump-03 is being flooded by a verifier impersonator *)
  (match List.find_opt (fun e -> e.name = "pump-03") fleet with
  | Some e ->
    let bogus = Adversary.forge_request e.session ~freshness:Message.F_none () in
    Adversary.flood e.session ~count:300 bogus;
    e.note <- "(under impersonation flood)"
  | None -> ());

  (* valve-04 sits behind a flaky radio link: 25% of frames are lost in
     each direction. The retry engine retransmits until the round
     converges anyway. *)
  (match List.find_opt (fun e -> e.name = "valve-04") fleet with
  | Some e ->
    Session.set_impairment e.session
      (Some
         (Ra_net.Impairment.create
            ~to_prover:(Ra_net.Impairment.lossy 0.25)
            ~to_verifier:(Ra_net.Impairment.lossy 0.25)
            ~seed:2L ()));
    e.note <- "(25% frame loss each way)"
  | None -> ());

  Printf.printf "%-12s %-16s %9s %10s %10s %12s  %s\n" "device" "verdict" "attempts"
    "attested" "rejected" "energy (mJ)" "note";
  List.iter
    (fun e ->
      let round = Session.attest_round_r e.session in
      let stats = Code_attest.stats (Session.anchor e.session) in
      let device = Session.device e.session in
      Printf.printf "%-12s %-16s %9d %10d %10d %12.3f  %s\n" e.name
        (Format.asprintf "%a" Verdict.pp round.Session.r_verdict)
        round.Session.r_attempts stats.Code_attest.attestations_performed
        stats.Code_attest.requests_rejected
        (1000.0 *. Energy.consumed_joules (Device.energy device))
        e.note)
    fleet;

  Printf.printf
    "\nThe flood on pump-03 was absorbed at MAC-check cost (all rejected),\n\
     sensor-02's infection shows up as an untrusted verdict on the next sweep,\n\
     and valve-04's lossy link is ridden out by retransmission with backoff.\n"
