(* The paper's §5 roaming adversary, narrated end to end, against an
   exposed prover and against a Figure-1b prover whose counter, clock
   share and IDT are protected by EA-MPU rules.

   Run with: dune exec examples/roaming_adversary.exe *)

open Ra_core
module Device = Ra_mcu.Device

let run ~defended =
  Printf.printf "\n==== prover with %s state ====\n"
    (if defended then "EA-MPU-protected" else "unprotected");
  let spec =
    {
      Architecture.trustlite_sw_clock with
      Architecture.spec_name = (if defended then "defended" else "exposed");
      protect_counter = defended;
      protect_clock_msb = defended;
      protect_idt = defended;
      protect_irq_ctrl = defended;
    }
  in
  let session = Session.create ~spec ~ram_size:8192 () in

  Printf.printf "t=5s    benign attestation round (establishes freshness state)\n";
  Session.advance_time session ~seconds:5.0;
  (match Session.attest_round session with
  | Some v -> Format.printf "        verifier: %a@." Verdict.pp v
  | None -> Format.printf "        no response@.");

  Printf.printf "t=35s   Phase I: the verifier sends a request; Adv_roam intercepts it\n";
  Session.advance_time session ~seconds:30.0;
  let _ = Session.send_request session in
  let withheld =
    match Adversary.intercept_next_request session with
    | Some req -> req
    | None -> failwith "nothing to intercept"
  in

  Printf.printf "t=35s   Phase II: compromise — roll the clock back 30 s, then erase traces\n";
  let report =
    Adversary.compromise session
      ~tampers:[ Adversary.Try_clock_set_back_ms 30_000L; Adversary.Try_counter_write 0L ]
  in
  List.iter
    (fun (tamper, result) ->
      Format.printf "        %a -> %a@." Adversary.pp_tamper tamper
        Adversary.pp_tamper_result result)
    report.Adversary.attempts;
  Printf.printf "        malware erased itself: %b\n" report.Adversary.traces_erased;

  Printf.printf "t=65s   Phase III: wait 30 s, replay the withheld request\n";
  Session.advance_time session ~seconds:30.0;
  let before =
    (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed
  in
  Adversary.replay session withheld;
  let after =
    (Code_attest.stats (Session.anchor session)).Code_attest.attestations_performed
  in
  if after > before then
    Printf.printf "        !! DoS SUCCEEDED: the prover attested a 30 s-old request\n"
  else Printf.printf "        DoS blocked: the stale request was rejected\n";

  (* post-hoc forensics *)
  let device = Session.device session in
  (match Device.clock device with
  | Some clock ->
    let prover_s =
      Ra_mcu.Cpu.with_context (Device.cpu device) Device.region_attest (fun () ->
          Ra_mcu.Clock.seconds clock)
    in
    Printf.printf "forensics: prover clock %.1f s vs real time %.1f s%s\n" prover_s
      (Ra_net.Simtime.now (Session.time session))
      (if Ra_net.Simtime.now (Session.time session) -. prover_s > 2.0 then
         "  <- clock left behind (evidence of the visit)"
       else "")
  | None -> ());
  Printf.printf "forensics: EA-MPU fault log has %d entr%s\n"
    (List.length (Ra_mcu.Cpu.faults (Device.cpu device)))
    (if List.length (Ra_mcu.Cpu.faults (Device.cpu device)) = 1 then "y" else "ies")

let () =
  Printf.printf "The three-phase roaming adversary of §5, against the SW-clock prover\n";
  run ~defended:false;
  run ~defended:true
