(* SMART's actual shape, end to end: Code_attest is a ROM routine (SHA-1
   in the interpreted instruction set) that computes the attestation HMAC
   instruction by instruction, reading the key and every attested byte
   through the EA-MPU. The unmodified verifier accepts its reports.

   Run with: dune exec examples/interpreted_anchor.exe *)

open Ra_core
module Device = Ra_mcu.Device
module Memory = Ra_mcu.Memory
module Cpu = Ra_mcu.Cpu
module Ea_mpu = Ra_mcu.Ea_mpu
module Timing = Ra_mcu.Timing

let sym_key = "fleet-master-key-07!" (* 20 bytes *)

let () =
  let rom = Isa_anchor.rom_image () in
  Printf.printf "Code_attest ROM image: %d bytes of SHA-1 + copy routine\n"
    (String.length rom);

  let device =
    Device.create ~ram_size:(4 * 1024)
      ~rom_images:[ (Device.region_attest, rom) ]
      ~key:(Auth.prover_key_blob ~sym_key ~public:None)
      ()
  in
  Device.fill_ram_deterministic device ~seed:77L;
  (* secure-boot-style rule setup: key, counter and the anchor's scratch *)
  Ea_mpu.program (Device.mpu device) (Device.rule_protect_key device);
  Ea_mpu.program (Device.mpu device) (Device.rule_protect_counter device);
  Ea_mpu.program (Device.mpu device)
    {
      Ea_mpu.rule_name = "anchor_scratch";
      data_base = Device.anchor_scratch_addr device;
      data_size = Ra_isa.Sha1_asm.scratch_bytes;
      read_by = Ea_mpu.Code_in [ Device.region_attest ];
      write_by = Ea_mpu.Code_in [ Device.region_attest ];
    };
  Ea_mpu.lock (Device.mpu device);

  let anchor =
    Isa_anchor.install device ~scheme:(Some Timing.Auth_hmac_sha1)
      ~policy:Freshness.Counter
  in
  let verifier =
    match
      Verifier.of_config
        (Verifier.Config.v ~scheme:Timing.Auth_hmac_sha1
           ~freshness_kind:Verifier.Fk_counter ~sym_key
           ~time:(Ra_net.Simtime.create ())
           ~reference_image:(Isa_anchor.measure_memory anchor) ())
    with
    | Ok v -> v
    | Error msg -> failwith msg
  in

  Printf.printf "\n== round 1: benign ==\n";
  let req = Verifier.make_request verifier in
  (match Isa_anchor.handle_request_r anchor req with
  | Ok resp ->
    Format.printf "verdict: %a@." Verdict.pp
      (Verifier.check_response_r verifier ~request:req resp);
    Printf.printf "interpreted MAC: %Ld cycles (%.2f ms at 24 MHz) for %d bytes\n"
      (Isa_anchor.last_mac_cycles anchor)
      (Timing.ms_of_cycles (Isa_anchor.last_mac_cycles anchor))
      (Device.attested_total_len device)
  | Error e -> Format.printf "rejected: %a@." Verdict.pp e);

  Printf.printf "\n== round 2: resident malware in attested RAM ==\n";
  Cpu.store_bytes (Device.cpu device) (Device.attested_base device) "IMPLANT";
  let req2 = Verifier.make_request verifier in
  (match Isa_anchor.handle_request_r anchor req2 with
  | Ok resp ->
    Format.printf "verdict: %a@." Verdict.pp
      (Verifier.check_response_r verifier ~request:req2 resp)
  | Error e -> Format.printf "rejected: %a@." Verdict.pp e);

  Printf.printf "\n== malware probes the anchor's private state ==\n";
  (try
     ignore (Cpu.load_byte (Device.cpu device) (Device.key_addr device));
     Printf.printf "BUG: key readable\n"
   with Cpu.Protection_fault _ -> Printf.printf "K_attest read: denied by EA-MPU\n");
  (try
     ignore (Cpu.load_byte (Device.cpu device) (Device.anchor_scratch_addr device));
     Printf.printf "BUG: scratch readable\n"
   with Cpu.Protection_fault _ ->
     Printf.printf "anchor scratch read (intermediate hash state): denied by EA-MPU\n")
