(* Future-work items 2 and 3: clock resynchronization and generalizing
   the anti-DoS envelope to other services (secure code update and
   secure memory erasure — the services the paper's introduction names
   as built on attestation).

   Run with: dune exec examples/secure_update.exe *)

open Ra_core
module Device = Ra_mcu.Device
module Timing = Ra_mcu.Timing
module Simtime = Ra_net.Simtime

let sym_key = "fleet-master-key-01!" (* 20 bytes *)

let () =
  let blob = Auth.prover_key_blob ~sym_key ~public:None in
  let device =
    Device.create ~ram_size:8192
      ~clock_impl:(Device.Clock_hw { width = 64; divider_log2 = 0 })
      ~key:blob ()
  in
  let time = Simtime.create () in

  (* --- clock synchronization (future work 2) --- *)
  Printf.printf "== authenticated clock synchronization ==\n";
  let sync = Clock_sync.install device in
  Simtime.advance_to time 120.0 (* the device booted 2 minutes late *);
  Printf.printf "before sync: prover wall-time %Ld ms, verifier %.0f ms\n"
    (Clock_sync.now_ms sync)
    (Simtime.now time *. 1000.0);
  let sync_req = Clock_sync.make_sync_request ~sym_key ~time ~counter:1L in
  (match Clock_sync.handle sync sync_req with
  | Ok ack ->
    Printf.printf "sync accepted, ack valid: %b\n"
      (Clock_sync.check_sync_ack ~sym_key ~counter:1L ack)
  | Error e -> Format.printf "sync rejected: %a@." Clock_sync.pp_reject e);
  Printf.printf "after sync:  prover wall-time %Ld ms (offset %Ld ms)\n"
    (Clock_sync.now_ms sync) (Clock_sync.offset_ms sync);
  (* replaying the recorded sync later must fail *)
  Simtime.advance_by time 60.0;
  (match Clock_sync.handle sync sync_req with
  | Error (Clock_sync.Sync_stale_counter _) ->
    Printf.printf "replayed sync request: rejected (stale counter) -- no rollback vector\n"
  | Ok _ -> Printf.printf "BUG: replayed sync accepted\n"
  | Error e -> Format.printf "replayed sync rejected: %a@." Clock_sync.pp_reject e);

  (* --- generalized services (future work 3) --- *)
  Printf.printf "\n== authenticated secure services ==\n";
  let svc =
    Service.install device ~scheme:(Some Timing.Auth_hmac_sha1) ~policy:Freshness.Counter
  in
  let send counter command =
    let req =
      Service.make_request ~sym_key ~scheme:(Some Timing.Auth_hmac_sha1)
        ~freshness:(Message.F_counter counter) command
    in
    match Service.handle_r svc req with
    | Ok ack -> Printf.printf "%-14s -> ok\n" ack.Service.acked_command
    | Error e -> Format.printf "%-14s -> rejected: %a@." (Service.command_name command)
                   Verdict.pp e
  in
  send 1L Service.Ping;
  send 2L (Service.Code_update { image = "firmware v2: safer valve control loop" });
  send 3L Service.Secure_erase;

  (* a forged erase (wrong key) and a replayed update must both bounce *)
  Printf.printf "\n== attacks on the service layer ==\n";
  let forged =
    Service.make_request ~sym_key:(String.make 20 'x')
      ~scheme:(Some Timing.Auth_hmac_sha1) ~freshness:(Message.F_counter 4L)
      Service.Secure_erase
  in
  (match Service.handle_r svc forged with
  | Error Verdict.Bad_auth -> Printf.printf "forged erase    -> rejected (bad MAC)\n"
  | Ok _ -> Printf.printf "BUG: forged erase accepted\n"
  | Error e -> Format.printf "forged erase    -> %a@." Verdict.pp e);
  let replayed =
    Service.make_request ~sym_key ~scheme:(Some Timing.Auth_hmac_sha1)
      ~freshness:(Message.F_counter 2L)
      (Service.Code_update { image = "firmware v2: safer valve control loop" })
  in
  (match Service.handle_r svc replayed with
  | Error (Verdict.Not_fresh _) ->
    Printf.printf "replayed update -> rejected (stale counter)\n"
  | Ok _ -> Printf.printf "BUG: replayed update accepted\n"
  | Error e -> Format.printf "replayed update -> %a@." Verdict.pp e);

  let stats = Service.stats svc in
  Printf.printf
    "\nservice stats: %d executed, %d rejected (%d bad auth, %d not fresh, %d fault)\n"
    stats.Service.invocations (Service.rejections stats)
    (Service.rejected stats Verdict.Reason.Bad_auth)
    (Service.rejected stats Verdict.Reason.Not_fresh)
    (Service.rejected stats Verdict.Reason.Fault);

  (* --- the same services, over the full protocol channel --- *)
  Printf.printf "\n== services over the Dolev-Yao channel (Session integration) ==\n";
  let session = Session.create ~ram_size:4096 () in
  Printf.printf "ping over the wire: acknowledged = %b\n"
    (Session.service_round session Service.Ping);
  Printf.printf "code update over the wire: acknowledged = %b\n"
    (Session.service_round session
       (Service.Code_update { image = "firmware v3 via radio" }));
  (* and clock sync over the same wire (future work 2) *)
  Session.advance_time session ~seconds:45.0;
  Printf.printf "clock sync over the wire: acknowledged = %b (prover wall %Ld ms)\n"
    (Session.sync_round session)
    (Session.prover_wall_ms session)
